//! E23 — crash soak (crashsoak): drive the durability tier as a
//! workload. Rounds of mixed service traffic are admitted through a real
//! write-ahead log, a torn-write crash is injected every round, and each
//! restart's recovery is timed and verified: exactly the
//! admitted-but-unacknowledged jobs replay, and no job that was
//! acknowledged before a crash is ever lost or double-answered — the
//! zero-loss contract of `docs/DURABILITY.md`.
//!
//! Like the other soaks (E21/E22) this measures real host wall-clock
//! behaviour: recovery latency is restart-to-ready time (log scan +
//! replay execution), and the **durability overhead** row compares the
//! wall time of an E19-style service run with the log on versus off —
//! the number the issue bounds at 15% (enforced by the release-mode
//! acceptance test, recorded here on every run).

use crate::service::SCENARIO_SEED;
use serde::Serialize;
use sortsvc::metrics::ratio;
use sortsvc::wal::{fault, AdmittedJob, Wal, WalConfig, WalError};
use sortsvc::{ServiceConfig, SortJob, SortService};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;
use stream_arch::telemetry::{HistogramSummary, LogHistogram};
use workloads::RequestMix;

/// One crash-soak result row.
#[derive(Clone, Debug, Serialize)]
pub struct CrashSoakRow {
    /// Crash/recover rounds driven.
    pub rounds: usize,
    /// Jobs durably admitted across every round.
    pub jobs: usize,
    /// Jobs acknowledged (completed or rejected in the log) before their
    /// round's crash.
    pub acknowledged: usize,
    /// Induced crashes (every round ends in a torn admission append).
    pub crashes: usize,
    /// Jobs replayed across every recovery.
    pub replayed_jobs: u64,
    /// Log bytes replayed across every recovery.
    pub replayed_bytes: u64,
    /// Recoveries that found (and truncated) a torn tail.
    pub torn_tails: usize,
    /// Torn bytes physically truncated across every recovery.
    pub torn_bytes: u64,
    /// Log segments scanned across every recovery.
    pub segments_scanned: u64,
    /// Median restart-to-ready time (wall ms; log scan + replay).
    pub recovery_p50_ms: f64,
    /// Worst restart-to-ready time (wall ms).
    pub recovery_max_ms: f64,
    /// Mean restart-to-ready time (wall ms).
    pub recovery_mean_ms: f64,
    /// The zero-loss check: every recovery replayed *exactly* the
    /// admitted-but-unacknowledged set — no acknowledged job re-ran, no
    /// open job was dropped, no torn record was replayed. The soak
    /// asserts this; it is recorded so the JSON artifact carries it.
    pub zero_loss: bool,
    /// Wall seconds of the E19-style overhead run with durability off.
    pub overhead_off_s: f64,
    /// Wall seconds of the same run with every admission and
    /// acknowledgement logged.
    pub overhead_on_s: f64,
    /// `overhead_on_s / overhead_off_s` — the durability overhead ratio
    /// the issue bounds at 1.15.
    pub durability_overhead: f64,
    /// Full distribution of the recovery latencies.
    pub recovery: HistogramSummary,
}

/// Log-wide job id of job `index` in round `round` (recovery replays by
/// these ids, so they must be unique across the whole soak).
fn soak_job_id(round: usize, index: usize) -> u64 {
    (round as u64) * 1_000_000 + index as u64
}

/// Append `job`'s admission to `wal` the way the server does: values are
/// moved into the record and back, never cloned.
fn admit(wal: &mut Wal, job: &mut SortJob) -> Result<(), WalError> {
    let mut record = AdmittedJob {
        job_id: job.id,
        tenant: job.tenant,
        arrival_ms: job.arrival_ms,
        hint: job.hint,
        values: std::mem::take(&mut job.values),
    };
    let result = wal.append_admitted(&record);
    job.values = std::mem::take(&mut record.values);
    result
}

/// Run the crash soak: `rounds` rounds of `jobs_per_round` mixed-traffic
/// jobs, each round ending in an induced torn-write crash, each restart
/// timed and verified. `overhead_jobs` sizes the durability-overhead
/// comparison run.
///
/// Panics if the zero-loss contract is violated — a soak that loses an
/// acknowledged job is a failed soak, not a data point.
pub fn crash_soak(rounds: usize, jobs_per_round: usize, overhead_jobs: usize) -> CrashSoakRow {
    static SOAK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "crashsoak-{}-{}",
        std::process::id(),
        SOAK.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    // Small segments so the soak exercises rotation and compaction, not
    // just a single growing file.
    let config = WalConfig {
        segment_max_bytes: 256 << 10,
        ..WalConfig::default()
    };
    let service = SortService::new(ServiceConfig::default());

    let mut row = CrashSoakRow {
        rounds,
        jobs: 0,
        acknowledged: 0,
        crashes: 0,
        replayed_jobs: 0,
        replayed_bytes: 0,
        torn_tails: 0,
        torn_bytes: 0,
        segments_scanned: 0,
        recovery_p50_ms: 0.0,
        recovery_max_ms: 0.0,
        recovery_mean_ms: 0.0,
        zero_loss: true,
        overhead_off_s: 0.0,
        overhead_on_s: 0.0,
        durability_overhead: 0.0,
        recovery: HistogramSummary::default(),
    };
    let mut recovery_hist = LogHistogram::new();
    let mut recovery_max = 0.0f64;

    let mut wal = Wal::open(&dir, config.clone()).expect("open soak log").wal;
    for round in 0..rounds {
        // Mixed traffic, fresh seed per round, log-wide unique job ids.
        let mut jobs = SortJob::from_requests(
            RequestMix::small_job_heavy(jobs_per_round)
                .generate(SCENARIO_SEED ^ ((round as u64) << 32)),
        );
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = soak_job_id(round, i);
        }
        let mut open: BTreeSet<u64> = BTreeSet::new();
        for job in &mut jobs {
            admit(&mut wal, job).expect("admission append");
            open.insert(job.id);
        }
        row.jobs += jobs.len();

        let report = service.process(jobs).expect("soak round");
        // Acknowledge most of the round; the tail stays in flight so the
        // crash has open jobs to strand (the at-least-once window).
        let acked_count = report.results.len() * 4 / 5;
        for result in report.results.iter().take(acked_count) {
            wal.append_completed(result.id).expect("ack append");
            open.remove(&result.id);
            row.acknowledged += 1;
        }
        for &(id, reason) in &report.rejected {
            wal.append_rejected(id, reason).expect("reject append");
            open.remove(&id);
            row.acknowledged += 1;
        }

        // The induced crash: the next admission tears mid-record and the
        // process life "dies" (the handle is abandoned).
        fault::arm(fault::FaultPlan {
            point: fault::FaultPoint::AdmitPrefix,
            after: 0,
            mode: fault::FaultMode::Stop,
            marker: None,
        });
        let mut victim = SortJob {
            id: soak_job_id(round, 999_999),
            tenant: 0,
            arrival_ms: 0.0,
            values: workloads::uniform(64, round as u64),
            hint: None,
            kind: sortsvc::JobKind::Sort,
        };
        let torn = admit(&mut wal, &mut victim);
        assert!(
            matches!(torn, Err(WalError::Injected(_))),
            "the induced crash must fire"
        );
        fault::disarm();
        drop(wal);
        row.crashes += 1;

        // Restart: timed recovery, then the verification that makes the
        // soak a test and not just a meter.
        let restarted = Instant::now();
        let recovered = service
            .recover(&dir, config.clone())
            .expect("recovery after induced crash");
        let elapsed_ms = restarted.elapsed().as_secs_f64() * 1e3;
        recovery_hist.record(elapsed_ms);
        recovery_max = recovery_max.max(elapsed_ms);

        let replayed: BTreeSet<u64> = recovered.report.results.iter().map(|r| r.id).collect();
        let rejected_replay: BTreeSet<u64> = recovered
            .report
            .rejected
            .iter()
            .map(|&(id, _)| id)
            .collect();
        let answered: BTreeSet<u64> = replayed.union(&rejected_replay).copied().collect();
        assert_eq!(
            answered, open,
            "round {round}: recovery must replay exactly the unacknowledged jobs \
             (zero acknowledged-job loss, no torn-record replay)"
        );
        for result in &recovered.report.results {
            assert!(
                result.output.windows(2).all(|w| w[0] <= w[1]),
                "round {round}: replayed job {} came back unsorted",
                result.id
            );
        }
        row.replayed_jobs += recovered.stats.recovered_jobs;
        row.replayed_bytes += recovered.stats.replayed_bytes;
        row.segments_scanned += recovered.stats.segments_scanned;
        if recovered.stats.torn_tail_truncated > 0 {
            row.torn_tails += 1;
        }
        row.torn_bytes += recovered.stats.torn_tail_truncated;
        wal = recovered.wal;
    }
    drop(wal);
    assert_eq!(row.torn_tails, rounds, "every round tore the tail");

    row.recovery_p50_ms = recovery_hist.quantile(0.5);
    row.recovery_mean_ms = recovery_hist.mean();
    row.recovery_max_ms = recovery_max;
    row.recovery = recovery_hist.summary();

    let (off_s, on_s) = durability_overhead(&service, &dir, overhead_jobs);
    row.overhead_off_s = off_s;
    row.overhead_on_s = on_s;
    row.durability_overhead = ratio(on_s, off_s);

    std::fs::remove_dir_all(&dir).ok();
    row
}

/// Time an E19-style service run with the log off versus on (admission
/// appended before processing, acknowledgements after — the server's
/// exact discipline, minus the wire). The timed window is the
/// steady-state a server lives in: appending and processing under the
/// default `FsyncPolicy::OnRotate`. Opening the log (a once-per-restart
/// cost) and the drain fsync (a once-per-shutdown cost) sit outside it —
/// the issue's 15% bound is on throughput, not on startup. Best of two
/// sittings each, so a scheduler hiccup does not masquerade as
/// durability cost.
fn durability_overhead(service: &SortService, dir: &Path, jobs: usize) -> (f64, f64) {
    // The same two mixes E19 itself runs (small-job-heavy + mixed), with
    // log-wide unique ids across the combined stream.
    let generate = |salt: u64| {
        let mut all = SortJob::from_requests(
            RequestMix::small_job_heavy(jobs).generate(SCENARIO_SEED ^ salt),
        );
        all.extend(SortJob::from_requests(
            RequestMix::mixed(jobs / 2).generate(SCENARIO_SEED ^ salt ^ 0xA5),
        ));
        for (i, job) in all.iter_mut().enumerate() {
            job.id = i as u64;
        }
        all
    };
    let run_off = |salt: u64| {
        let jobs = generate(salt);
        let started = Instant::now();
        service.process(jobs).expect("overhead run (off)");
        started.elapsed().as_secs_f64()
    };
    let overhead_dir = |salt: u64| -> PathBuf { dir.join(format!("overhead-{salt}")) };
    let run_on = |salt: u64| {
        let mut jobs = generate(salt);
        let subdir = overhead_dir(salt);
        std::fs::remove_dir_all(&subdir).ok();
        let mut wal = Wal::open(&subdir, WalConfig::default())
            .expect("open overhead log")
            .wal;
        let started = Instant::now();
        for job in &mut jobs {
            admit(&mut wal, job).expect("overhead admission");
        }
        let report = service.process(jobs).expect("overhead run (on)");
        for result in &report.results {
            wal.append_completed(result.id).expect("overhead ack");
        }
        for &(id, reason) in &report.rejected {
            wal.append_rejected(id, reason).expect("overhead reject");
        }
        let elapsed = started.elapsed().as_secs_f64();
        wal.sync().expect("overhead fsync");
        elapsed
    };
    let off = run_off(11).min(run_off(13));
    let on = run_on(11).min(run_on(13));
    (off, on)
}

/// Render the crash-soak rows as a report table.
pub fn render_crashsoak(rows: &[CrashSoakRow]) -> String {
    let mut out = String::from(
        "E23 — crash soak: induced torn-write crashes, timed recovery, zero-loss check (wall clock)\n",
    );
    out.push_str(&format!(
        "{:>6} | {:>5} | {:>7} | {:>8} | {:>8} | {:>10} | {:>10} | {:>10} | {:>9} | {:>8}\n",
        "rounds",
        "jobs",
        "acked",
        "replayed",
        "torn B",
        "rec p50 ms",
        "rec max ms",
        "zero-loss",
        "overhead",
        "segments"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>6} | {:>5} | {:>7} | {:>8} | {:>8} | {:>10.2} | {:>10.2} | {:>10} | {:>8.2}x | {:>8}\n",
            row.rounds,
            row.jobs,
            row.acknowledged,
            row.replayed_jobs,
            row.torn_bytes,
            row.recovery_p50_ms,
            row.recovery_max_ms,
            if row.zero_loss { "yes" } else { "LOST JOBS" },
            row.durability_overhead,
            row.segments_scanned,
        ));
    }
    out.push_str(
        "(recovery is restart-to-ready wall time: log scan + replay; overhead is the wall-time \
         ratio of an E19-style run with the write-ahead log on vs off — the issue bounds it at \
         1.15x, enforced by the release acceptance test)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_soak_recovers_every_round_with_zero_loss() {
        // Small but complete: 2 crash/recover rounds + the overhead run.
        let row = crash_soak(2, 12, 12);
        assert_eq!(row.rounds, 2);
        assert_eq!(row.crashes, 2);
        assert_eq!(row.torn_tails, 2);
        assert!(row.torn_bytes > 0);
        assert!(row.zero_loss);
        assert!(row.jobs >= 24);
        assert!(row.acknowledged > 0);
        assert!(row.replayed_jobs > 0, "each round leaves jobs in flight");
        assert!(row.replayed_bytes > 0);
        assert!(row.recovery_p50_ms.is_finite() && row.recovery_p50_ms >= 0.0);
        assert!(row.recovery_max_ms >= row.recovery_p50_ms);
        assert!(row.durability_overhead.is_finite() && row.durability_overhead > 0.0);
        let rendered = render_crashsoak(&[row]);
        assert!(rendered.contains("crash soak"));
        assert!(rendered.contains("yes"));
    }

    /// The 15% durability-overhead bound from the issue, enforced in
    /// release mode (wall-clock ratios in debug builds measure the
    /// unoptimized WAL codec, not the shipped cost). Run explicitly:
    /// `cargo test --release -p bench --test '*' -- --ignored` or via the
    /// weekly CI acceptance sweep.
    #[test]
    #[ignore = "release-mode acceptance: run with --ignored"]
    fn durability_overhead_stays_within_fifteen_percent() {
        let row = crash_soak(1, 8, 200);
        assert!(
            row.durability_overhead <= 1.15,
            "durability-on E19 run must stay within 15% of off, measured {:.3}x \
             (off {:.3}s, on {:.3}s)",
            row.durability_overhead,
            row.overhead_off_s,
            row.overhead_on_s
        );
    }
}
