//! Table rendering and JSON reporting for the `repro` binary.

use crate::crashsoak::CrashSoakRow;
use crate::experiments::{
    AblationRow, DataDependenceRow, ScalingRow, StreamOpsRow, TimingRow, TransferRow, WorkRow,
};
use crate::extended::{PaddingRow, PramRow, TeraSortRow};
use crate::netsoak::NetSoakRow;
use crate::service::ServiceRow;
use crate::sharded::ShardedRow;
use crate::typed::TypedRow;
use crate::wallclock::WallClockRow;
use serde::Serialize;

/// Host provenance of a report run.
///
/// The wall-clock rows in `BENCH_WALL.json` are only comparable across
/// runs on the same machine class; the header records enough of the host
/// (core count, toolchain, platform, build profile) for the perf gate's
/// consumers to judge whether two trajectory points are comparable.
#[derive(Clone, Debug, Default, Serialize)]
pub struct HostInfo {
    /// Available hardware parallelism (logical cores).
    pub cores: usize,
    /// `rustc --version` of the compiler that built the harness.
    pub rustc: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Cargo build profile the harness ran under (`debug` / `release`).
    pub profile: String,
}

impl HostInfo {
    /// Probe the current host.
    pub fn detect() -> Self {
        HostInfo {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0),
            rustc: env!("BENCH_RUSTC_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .to_string(),
        }
    }
}

/// A collection of experiment results that can be rendered as text (the
/// paper-style tables) or serialized to JSON for EXPERIMENTS.md.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// Host the report was produced on (cores, rustc, platform).
    pub host: HostInfo,
    /// Table 2 rows (GeForce 6800 system), if run.
    pub table2: Vec<TimingRow>,
    /// Table 3 rows (GeForce 7800 system), if run.
    pub table3: Vec<TimingRow>,
    /// Data-dependence rows, if run.
    pub data_dependence: Vec<DataDependenceRow>,
    /// Transfer-overhead rows, if run.
    pub transfer: Vec<TransferRow>,
    /// Stream-operation-count rows, if run.
    pub stream_ops: Vec<StreamOpsRow>,
    /// Work-complexity rows, if run.
    pub work: Vec<WorkRow>,
    /// Scaling rows, if run.
    pub scaling: Vec<ScalingRow>,
    /// Ablation rows, if run.
    pub ablation: Vec<AblationRow>,
    /// PRAM-comparison rows (E16), if run.
    pub pram: Vec<PramRow>,
    /// Out-of-core pipeline rows (E17), if run.
    pub terasort: Vec<TeraSortRow>,
    /// Padding-overhead rows (E18), if run.
    pub padding: Vec<PaddingRow>,
    /// Sorting-service rows (E19), if run.
    pub service: Vec<ServiceRow>,
    /// Sharded-scaling rows (E20), if run.
    pub sharded: Vec<ShardedRow>,
    /// The E20 sharded-reservation fairness service row, if run.
    pub sharded_service: Vec<ServiceRow>,
    /// Wall-clock engine rows (E21), if run.
    pub wallclock: Vec<WallClockRow>,
    /// Networked-soak rows (E22), if run.
    pub netsoak: Vec<NetSoakRow>,
    /// Crash-soak rows (E23), if run.
    pub crashsoak: Vec<CrashSoakRow>,
    /// Typed-query rows (E24), if run.
    pub typed: Vec<TypedRow>,
}

fn fmt_ms(ms: f64) -> String {
    format!("{ms:8.1} ms")
}

/// Render a Table 2 / Table 3 style timing table.
pub fn render_timing_table(title: &str, rows: &[TimingRow], with_rowwise: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');
    if with_rowwise {
        out.push_str(&format!(
            "{:>9} | {:>21} | {:>11} | {:>14} | {:>14}\n",
            "n", "CPU sort", "GPUSort", "GPU-ABiSort(a)", "GPU-ABiSort(b)"
        ));
    } else {
        out.push_str(&format!(
            "{:>9} | {:>21} | {:>11} | {:>14}\n",
            "n", "CPU sort", "GPUSort", "GPU-ABiSort"
        ));
    }
    for row in rows {
        let cpu = format!("{:6.1} – {:6.1} ms", row.cpu_ms.0, row.cpu_ms.1);
        if with_rowwise {
            out.push_str(&format!(
                "{:>9} | {:>21} | {:>11} | {:>14} | {:>14}\n",
                row.n,
                cpu,
                fmt_ms(row.gpusort_ms),
                fmt_ms(row.abisort_rowwise_ms.unwrap_or(f64::NAN)),
                fmt_ms(row.abisort_zorder_ms),
            ));
        } else {
            out.push_str(&format!(
                "{:>9} | {:>21} | {:>11} | {:>14}\n",
                row.n,
                cpu,
                fmt_ms(row.gpusort_ms),
                fmt_ms(row.abisort_zorder_ms),
            ));
        }
    }
    out
}

/// Render the data-dependence table (E10).
pub fn render_data_dependence(rows: &[DataDependenceRow]) -> String {
    let mut out = String::from("E10 — data dependence of the running time\n");
    out.push_str(&format!(
        "{:>20} | {:>14} | {:>16} | {:>14} | {:>18}\n",
        "distribution", "CPU sort [ms]", "CPU comparisons", "ABiSort [ms]", "ABiSort comparisons"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>20} | {:>14.1} | {:>16} | {:>14.1} | {:>18}\n",
            row.distribution,
            row.cpu_ms,
            row.cpu_comparisons,
            row.abisort_ms,
            row.abisort_comparisons
        ));
    }
    out
}

/// Render the transfer-overhead table (E11).
pub fn render_transfer(rows: &[TransferRow]) -> String {
    let mut out = String::from("E11 — host \u{2194} device transfer overhead (2^20 pairs)\n");
    out.push_str(&format!(
        "{:>38} | {:>10} | {:>10} | {:>11} | {:>10}\n",
        "bus", "upload", "readback", "round trip", "sort time"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>38} | {:>7.1} ms | {:>7.1} ms | {:>8.1} ms | {:>7.1} ms\n",
            row.bus, row.upload_ms, row.readback_ms, row.round_trip_ms, row.sort_ms
        ));
    }
    out
}

/// Render the stream-operation-count table (E12).
pub fn render_stream_ops(rows: &[StreamOpsRow]) -> String {
    let mut out = String::from("E12 — stream operations (steps) per sort\n");
    out.push_str(&format!(
        "{:>9} | {:>10} | {:>12} | {:>10} | {:>15} | {:>14}\n",
        "n", "sequential", "overlapped", "optimized", "analytic log^3", "analytic log^2"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>10} | {:>12} | {:>10} | {:>15} | {:>14}\n",
            row.n,
            row.sequential_phase_steps,
            row.overlapped_steps,
            row.optimized_steps,
            row.analytic_phases,
            row.analytic_steps
        ));
    }
    out
}

/// Render the work-complexity table (E13).
pub fn render_work(rows: &[WorkRow]) -> String {
    let mut out = String::from("E13 — total comparisons\n");
    out.push_str(&format!(
        "{:>9} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12}\n",
        "n", "seq ABiSort", "GPU-ABiSort", "GPUSort", "OEMS", "PBSN", "quicksort", "2 n log n"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12}\n",
            row.n,
            row.sequential_abisort,
            row.stream_abisort,
            row.gpusort,
            row.oems,
            row.pbsn,
            row.cpu_quicksort,
            row.bound_2n_log_n
        ));
    }
    out
}

/// Render the scaling table (E14).
pub fn render_scaling(rows: &[ScalingRow], n: usize) -> String {
    let mut out = format!("E14 — scaling with the number of stream processor units (n = {n})\n");
    out.push_str(&format!(
        "{:>6} | {:>16} | {:>17} | {:>8}\n",
        "p", "multi-block [ms]", "single-block [ms]", "speed-up"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>6} | {:>16.2} | {:>17.2} | {:>7.2}x\n",
            row.units, row.multi_block_ms, row.single_block_ms, row.speedup
        ));
    }
    out
}

/// Render the ablation table (E15).
pub fn render_ablation(rows: &[AblationRow], n: usize) -> String {
    let mut out = format!("E15 — ablation of the design choices (n = {n}, GeForce 6800 profile)\n");
    out.push_str(&format!(
        "{:>50} | {:>10} | {:>7} | {:>12} | {:>10}\n",
        "configuration", "sim [ms]", "steps", "comparisons", "cache hits"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>50} | {:>10.2} | {:>7} | {:>12} | {:>9.1}%\n",
            row.config,
            row.sim_ms,
            row.steps,
            row.comparisons,
            100.0 * row.cache_hit_rate
        ));
    }
    out
}

impl Report {
    /// Serialize the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_contains_the_data() {
        let rows = vec![TimingRow {
            n: 32768,
            cpu_ms: (12.0, 16.0),
            gpusort_ms: 13.0,
            abisort_rowwise_ms: Some(11.0),
            abisort_zorder_ms: 8.0,
        }];
        let text = render_timing_table("Table 2", &rows, true);
        assert!(text.contains("32768"));
        assert!(text.contains("GPU-ABiSort(b)"));
        let text3 = render_timing_table("Table 3", &rows, false);
        assert!(!text3.contains("GPU-ABiSort(a)"));

        let report = Report {
            table2: rows,
            ..Report::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"gpusort_ms\": 13.0"));
    }
}
