//! ASCII charts for the timing series.
//!
//! The paper shows each timing table next to a line chart of the same data
//! (time over sequence length, one curve per sorter). The `repro` binary
//! reproduces those companion charts as ASCII plots so that the "figure"
//! part of Tables 2 and 3 is regenerated along with the numbers.

use crate::experiments::TimingRow;

/// One curve of a chart: a label, a plotting marker and the data points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Single-character marker used for the curve's points.
    pub marker: char,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

/// Render `series` into an ASCII chart of the given plot-area size.
///
/// The x axis is scaled logarithmically (the tables double `n` from row to
/// row), the y axis linearly from zero to the largest value. Points that
/// collide on the same character cell keep the marker drawn last.
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart area too small");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let y_max = points.iter().map(|p| p.1).fold(0.0f64, f64::max).max(1e-12);

    let x_pos = |x: f64| -> usize {
        if x_max <= x_min {
            return 0;
        }
        let t = (x.ln() - x_min.ln()) / (x_max.ln() - x_min.ln());
        ((t * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let y_pos = |y: f64| -> usize {
        let t = y / y_max;
        (height - 1) - ((t * (height - 1) as f64).round() as usize).min(height - 1)
    };

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            grid[y_pos(y)][x_pos(x)] = s.marker;
        }
    }

    let label_width = 10;
    for (row_index, row) in grid.iter().enumerate() {
        let label = if row_index == 0 {
            format!("{y_max:9.0} ")
        } else if row_index == height - 1 {
            format!("{:9.0} ", 0.0)
        } else {
            " ".repeat(label_width)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_width));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<12}{:>width$}\n",
        " ".repeat(label_width + 1),
        format_n(x_min),
        format_n(x_max),
        width = width.saturating_sub(12),
    ));
    for s in series {
        out.push_str(&format!(
            "{}{}  {}\n",
            " ".repeat(label_width + 1),
            s.marker,
            s.label
        ));
    }
    out
}

fn format_n(n: f64) -> String {
    let n = n.round() as u64;
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}Mi", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}Ki", n >> 10)
    } else {
        n.to_string()
    }
}

/// The companion chart of a Table 2 / Table 3 timing table: time in ms over
/// sequence length, one curve per sorter.
pub fn timing_chart(title: &str, rows: &[TimingRow], with_rowwise: bool) -> String {
    let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
    let mut series = vec![
        Series {
            label: "CPU sort (upper bound of the range)".into(),
            marker: 'c',
            points: xs.iter().zip(rows).map(|(&x, r)| (x, r.cpu_ms.1)).collect(),
        },
        Series {
            label: "GPUSort (bitonic network)".into(),
            marker: 'g',
            points: xs
                .iter()
                .zip(rows)
                .map(|(&x, r)| (x, r.gpusort_ms))
                .collect(),
        },
    ];
    if with_rowwise {
        series.push(Series {
            label: "GPU-ABiSort (a) row-wise".into(),
            marker: 'a',
            points: xs
                .iter()
                .zip(rows)
                .filter_map(|(&x, r)| r.abisort_rowwise_ms.map(|y| (x, y)))
                .collect(),
        });
    }
    series.push(Series {
        label: if with_rowwise {
            "GPU-ABiSort (b) Z-order"
        } else {
            "GPU-ABiSort"
        }
        .into(),
        marker: 'b',
        points: xs
            .iter()
            .zip(rows)
            .map(|(&x, r)| (x, r.abisort_zorder_ms))
            .collect(),
    });
    render_chart(title, &series, 60, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<TimingRow> {
        (15..=20u32)
            .map(|log_n| {
                let n = 1usize << log_n;
                let scale = (n as f64) / 32768.0;
                TimingRow {
                    n,
                    cpu_ms: (12.0 * scale, 16.0 * scale),
                    gpusort_ms: 13.0 * scale,
                    abisort_rowwise_ms: Some(11.0 * scale),
                    abisort_zorder_ms: 8.0 * scale,
                }
            })
            .collect()
    }

    #[test]
    fn chart_contains_axes_markers_and_legend() {
        let text = timing_chart("Table 2 chart", &sample_rows(), true);
        assert!(text.contains("Table 2 chart"));
        for marker in ['c', 'g', 'a', 'b'] {
            assert!(text.contains(marker), "missing marker {marker}");
        }
        assert!(text.contains("GPU-ABiSort (b) Z-order"));
        assert!(text.contains("32Ki"));
        assert!(text.contains("1Mi"));
        assert!(text.contains('+'));
    }

    #[test]
    fn table3_chart_has_no_rowwise_series() {
        let text = timing_chart("Table 3 chart", &sample_rows(), false);
        assert!(!text.contains("row-wise"));
        assert!(text.contains("GPU-ABiSort\n"));
    }

    #[test]
    fn largest_value_sits_on_the_top_row_and_smallest_near_the_bottom() {
        let series = vec![Series {
            label: "s".into(),
            marker: '*',
            points: vec![(1.0, 0.0), (1024.0, 100.0)],
        }];
        let text = render_chart("t", &series, 20, 8);
        let rows: Vec<&str> = text.lines().collect();
        // Row 1 is the first grid row (top, y = max), row 8 the last.
        assert!(rows[1].contains('*'), "top row should hold the maximum");
        assert!(
            rows[8].contains('*'),
            "bottom row should hold the zero point"
        );
    }

    #[test]
    fn x_axis_is_logarithmic() {
        // Three points at n, 2n, 4n must be evenly spaced horizontally.
        let series = vec![Series {
            label: "s".into(),
            marker: '*',
            points: vec![(1024.0, 1.0), (2048.0, 1.0), (4096.0, 1.0)],
        }];
        let text = render_chart("t", &series, 41, 4);
        // All points share y = y_max, so they land on the first grid row.
        let line = text.lines().nth(1).unwrap();
        let positions: Vec<usize> = line
            .char_indices()
            .filter(|(_, c)| *c == '*')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 3);
        assert_eq!(positions[1] - positions[0], positions[2] - positions[1]);
    }

    #[test]
    fn empty_series_render_a_placeholder() {
        let text = render_chart("t", &[], 20, 5);
        assert!(text.contains("no data"));
    }

    #[test]
    fn format_n_uses_binary_suffixes() {
        assert_eq!(format_n(32768.0), "32Ki");
        assert_eq!(format_n(1048576.0), "1Mi");
        assert_eq!(format_n(1000.0), "1000");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_degenerate_chart_areas() {
        let _ = render_chart("t", &[], 4, 2);
    }
}
