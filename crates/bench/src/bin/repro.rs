//! `repro` — regenerate the paper's tables and figures on the simulator.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- [OPTIONS]
//!
//! OPTIONS:
//!   --all                 run every experiment (default if nothing else is given)
//!   --table 2|3           the timing tables (E8 / E9)
//!   --figures             the layout figures 4–7 (E4–E7) and Figure 1
//!   --experiment NAME     data-dependence | transfer | stream-ops | work |
//!                         scaling | ablation | pram | terasort | padding |
//!                         service | sharded | wallclock | netsoak |
//!                         crashsoak | typed
//!   --scenario NAME       alias of --experiment (e.g. --scenario service)
//!   --max-log-n K         cap the table sizes at 2^K (default 20; use 16
//!                         for a quick run)
//!   --dump-plan N         print the launch plan the sorter records for an
//!                         N-element sort (the operator DAG: stages, nodes,
//!                         named buffer reads/writes; see docs/PLANNER.md)
//!                         and exit
//!   --json PATH           additionally write all collected results as JSON
//!   --trace PATH          enable structured tracing for the whole run and
//!                         write the collected spans as Chrome trace_event
//!                         JSON to PATH (load in chrome://tracing or
//!                         https://ui.perfetto.dev; see
//!                         docs/OBSERVABILITY.md)
//!   --check-baseline PATH perf-regression gate: after running the
//!                         wallclock scenario, compare each row's speedup
//!                         against the committed BENCH_WALL.json at PATH
//!                         and exit non-zero if any row regressed beyond
//!                         the tolerance (run with the same flags the
//!                         baseline was produced with; enforced only when
//!                         the host matches the baseline's recorded core
//!                         count, advisory otherwise)
//!   --baseline-tolerance P allowed relative speedup loss for the gate,
//!                         in percent (default 25)
//! ```

use bench::extended::{render_padding, render_pram, render_terasort};
use bench::report::{
    render_ablation, render_data_dependence, render_scaling, render_stream_ops,
    render_timing_table, render_transfer, render_work,
};
use bench::{experiments, extended, Report};

#[derive(Debug)]
struct Options {
    all: bool,
    table2: bool,
    table3: bool,
    figures: bool,
    experiments: Vec<String>,
    max_log_n: u32,
    json: Option<String>,
    trace: Option<String>,
    check_baseline: Option<String>,
    baseline_tolerance: f64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        all: false,
        table2: false,
        table3: false,
        figures: false,
        experiments: Vec::new(),
        max_log_n: 20,
        json: None,
        trace: None,
        check_baseline: None,
        baseline_tolerance: 0.25,
    };
    let mut args = std::env::args().skip(1);
    let mut any = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {
                opts.all = true;
                any = true;
            }
            "--table" => {
                match args.next().as_deref() {
                    Some("2") => opts.table2 = true,
                    Some("3") => opts.table3 = true,
                    other => {
                        eprintln!("unknown table {other:?} (expected 2 or 3)");
                        std::process::exit(2);
                    }
                }
                any = true;
            }
            "--figures" | "--figure" => {
                opts.figures = true;
                any = true;
            }
            "--experiment" | "--scenario" => {
                let name = args.next().unwrap_or_default();
                opts.experiments.push(name);
                any = true;
            }
            "--max-log-n" => {
                opts.max_log_n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-log-n requires an integer argument");
            }
            "--dump-plan" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--dump-plan requires an element count");
                let sorter = abisort::GpuAbiSorter::new(abisort::SortConfig::default());
                match sorter.describe_plan(n) {
                    Some(text) => print!("{text}"),
                    None => println!("no stream program runs for n={n} (already sorted)"),
                }
                std::process::exit(0);
            }
            "--json" => {
                opts.json = Some(args.next().expect("--json requires a path"));
            }
            "--trace" => {
                opts.trace = Some(args.next().expect("--trace requires a path"));
            }
            "--check-baseline" => {
                opts.check_baseline = Some(args.next().expect("--check-baseline requires a path"));
                // The gate compares wallclock rows, so make sure they run.
                if !opts.experiments.iter().any(|e| e == "wallclock") {
                    opts.experiments.push("wallclock".into());
                }
                any = true;
            }
            "--baseline-tolerance" => {
                let pct: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--baseline-tolerance requires a number (percent)");
                assert!(
                    (0.0..100.0).contains(&pct),
                    "--baseline-tolerance must be in [0, 100)"
                );
                opts.baseline_tolerance = pct / 100.0;
            }
            "--help" | "-h" => {
                println!("see the module documentation at the top of repro.rs");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if !any {
        opts.all = true;
    }
    opts
}

fn print_figures() {
    use abisort::stream_sort::layout_plan::{figure_table_overlapped, figure_table_sequential};
    println!("Figure 4 — output stream layout, j = 4, n = 2^4");
    println!("{}", figure_table_sequential(4, 4).render());
    println!("Figure 5 — output stream layout, j = 4, n = 2^5 (two trees)");
    println!("{}", figure_table_sequential(4, 5).render());
    println!("Figure 6 — overlapped stages (Section 5.4), j = 4, n = 2^5");
    println!("{}", figure_table_overlapped(4, 5, 0).render());
    println!("Figure 7 — last 4 stages replaced by the fixed merge (Section 7.2), j = 6");
    println!("{}", figure_table_overlapped(6, 6, 4).render());
}

fn main() {
    let opts = parse_args();
    if opts.trace.is_some() {
        stream_arch::telemetry::TraceSink::global().set_enabled(true);
    }
    let mut report = Report {
        host: bench::HostInfo::detect(),
        ..Default::default()
    };
    let wants = |name: &str| opts.all || opts.experiments.iter().any(|e| e == name);

    if opts.all || opts.figures {
        print_figures();
    }

    if opts.all || opts.table2 {
        eprintln!(
            "running Table 2 (GeForce 6800 profile), n up to 2^{} …",
            opts.max_log_n
        );
        report.table2 = experiments::table2_geforce_6800(opts.max_log_n);
        println!(
            "{}",
            render_timing_table(
                "Table 2 — GeForce 6800 Ultra / Athlon-XP 3000+ (simulated)",
                &report.table2,
                true
            )
        );
        println!(
            "{}",
            bench::chart::timing_chart(
                "Table 2 companion chart (time in ms)",
                &report.table2,
                true
            )
        );
    }
    if opts.all || opts.table3 {
        eprintln!(
            "running Table 3 (GeForce 7800 profile), n up to 2^{} …",
            opts.max_log_n
        );
        report.table3 = experiments::table3_geforce_7800(opts.max_log_n);
        println!(
            "{}",
            render_timing_table(
                "Table 3 — GeForce 7800 GTX / Athlon-64 4200+ (simulated)",
                &report.table3,
                false
            )
        );
        println!(
            "{}",
            bench::chart::timing_chart(
                "Table 3 companion chart (time in ms)",
                &report.table3,
                false
            )
        );
    }
    if wants("data-dependence") {
        let n = 1 << opts.max_log_n.min(18);
        eprintln!("running data-dependence experiment (n = {n}) …");
        report.data_dependence = experiments::data_dependence(n);
        println!("{}", render_data_dependence(&report.data_dependence));
    }
    if wants("transfer") {
        eprintln!("running transfer-overhead experiment …");
        report.transfer = experiments::transfer_overhead(1 << 20);
        println!("{}", render_transfer(&report.transfer));
    }
    if wants("stream-ops") {
        let logs: Vec<u32> = (10..=opts.max_log_n.min(18)).step_by(2).collect();
        eprintln!("running stream-operation-count experiment …");
        report.stream_ops = experiments::stream_operation_counts(&logs);
        println!("{}", render_stream_ops(&report.stream_ops));
    }
    if wants("work") {
        let logs: Vec<u32> = (10..=opts.max_log_n.min(18)).step_by(2).collect();
        eprintln!("running work-complexity experiment …");
        report.work = experiments::work_complexity(&logs);
        println!("{}", render_work(&report.work));
    }
    if wants("scaling") {
        let n = 1 << opts.max_log_n.min(17);
        eprintln!("running p-scaling experiment (n = {n}) …");
        report.scaling = experiments::scaling_with_units(n, &[1, 2, 4, 8, 16, 24, 32, 64, 128]);
        println!("{}", render_scaling(&report.scaling, n));
    }
    if wants("ablation") {
        let n = 1 << opts.max_log_n.min(17);
        eprintln!("running ablation experiment (n = {n}) …");
        report.ablation = experiments::ablation(n);
        println!("{}", render_ablation(&report.ablation, n));
    }
    if wants("pram") {
        let logs: Vec<u32> = (10..=opts.max_log_n.min(16)).step_by(2).collect();
        eprintln!("running PRAM-sorter experiment …");
        report.pram = extended::pram_comparison(&logs);
        println!("{}", render_pram(&report.pram));
    }
    if wants("terasort") {
        let records = 1usize << opts.max_log_n.min(17);
        eprintln!("running out-of-core pipeline experiment ({records} records) …");
        report.terasort = extended::terasort_pipelines(records, records / 8);
        println!("{}", render_terasort(&report.terasort));
    }
    if wants("padding") {
        let log_n = opts.max_log_n.min(16);
        eprintln!("running padding-overhead experiment (base 2^{log_n}) …");
        report.padding = extended::padding_overhead(log_n);
        println!("{}", render_padding(&report.padding));
    }
    if wants("service") {
        let jobs = if opts.max_log_n >= 18 { 400 } else { 160 };
        eprintln!("running sorting-service scenario ({jobs} jobs) …");
        report.service = bench::service::service_scenario(jobs);
        println!("{}", bench::service::render_service(&report.service));
    }
    if wants("sharded") {
        if opts.max_log_n > 20 {
            eprintln!(
                "sharded scenario caps the job at 2^20 (requested 2^{})",
                opts.max_log_n
            );
        }
        let n = 1usize << opts.max_log_n.min(20);
        eprintln!("running sharded-scaling experiment E20 (n = {n}) …");
        report.sharded = bench::sharded::sharded_scaling(n);
        println!("{}", bench::sharded::render_sharded(&report.sharded));
        // The fairness half: multi-slot reservations interleaving with
        // small jobs (the preset's jobs are sharded-scale, so this part
        // only runs at release-grade sizes).
        if opts.max_log_n >= 17 {
            eprintln!("running sharded-reservation fairness mix …");
            report.sharded_service = vec![bench::sharded::sharded_mix_row(10)];
            println!(
                "{}",
                bench::service::render_service(&report.sharded_service)
            );
        }
    }

    if wants("wallclock") {
        eprintln!("running wall-clock engine comparison E21 (this times real host work) …");
        report.wallclock = bench::wallclock::wallclock_suite(opts.max_log_n);
        println!("{}", bench::wallclock::render_wallclock(&report.wallclock));
    }

    if wants("netsoak") {
        let (clients, jobs_per_client) = if opts.max_log_n >= 18 {
            (8, 40)
        } else {
            (4, 12)
        };
        eprintln!(
            "running networked soak E22 ({clients} clients × {jobs_per_client} jobs over \
             loopback; this times real host work) …"
        );
        report.netsoak = vec![bench::netsoak::netsoak(clients, jobs_per_client)];
        println!("{}", bench::netsoak::render_netsoak(&report.netsoak));
    }

    if wants("crashsoak") {
        let (rounds, jobs_per_round, overhead_jobs) = if opts.max_log_n >= 18 {
            (6, 40, 200)
        } else {
            (3, 16, 60)
        };
        eprintln!(
            "running crash soak E23 ({rounds} induced crashes × {jobs_per_round} jobs through \
             the write-ahead log; this times real host work) …"
        );
        report.crashsoak = vec![bench::crashsoak::crash_soak(
            rounds,
            jobs_per_round,
            overhead_jobs,
        )];
        println!("{}", bench::crashsoak::render_crashsoak(&report.crashsoak));
    }

    if wants("typed") {
        eprintln!(
            "running typed-query scenario E24 (codec layer: sorts, top-k, order-by, \
             percentiles) …"
        );
        report.typed = bench::typed::typed_scenario(opts.max_log_n);
        println!("{}", bench::typed::render_typed(&report.typed));
    }

    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).expect("failed to write JSON report");
        eprintln!("wrote JSON report to {path}");
    }

    if let Some(path) = &opts.trace {
        let sink = stream_arch::telemetry::TraceSink::global();
        sink.set_enabled(false);
        let events = sink.take_events();
        let n = events.len();
        std::fs::write(path, stream_arch::telemetry::chrome_trace_json(&events))
            .expect("failed to write trace JSON");
        eprintln!(
            "wrote Chrome trace ({n} spans) to {path} — load in chrome://tracing or Perfetto"
        );
    }

    if let Some(path) = &opts.check_baseline {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("failed to read baseline {path}: {e}"));
        // Speedup bands are only meaningful on the machine class the
        // baseline was measured on (the parallel matrix's spawn-vs-pool
        // ratio scales with the core count). On a different host the gate
        // still runs and prints the comparison, but does not fail the
        // build — the absolute acceptance floors cover that case.
        let enforced = match bench::wallclock::baseline_host_cores(&baseline) {
            Some(cores) if cores == report.host.cores => true,
            Some(cores) => {
                eprintln!(
                    "perf-regression gate: baseline was measured on {cores} cores, this host \
                     has {} — reporting only, not enforcing (the acceptance-floor tests still \
                     gate; re-commit a baseline from this machine class to re-arm the gate)",
                    report.host.cores
                );
                false
            }
            None => {
                eprintln!(
                    "perf-regression gate: baseline has no host header — reporting only, not \
                     enforcing"
                );
                false
            }
        };
        match bench::wallclock::check_against_baseline(
            &report.wallclock,
            &baseline,
            opts.baseline_tolerance,
        ) {
            Ok(checks) => {
                println!(
                    "{}",
                    bench::wallclock::render_baseline_checks(&checks, opts.baseline_tolerance)
                );
                let regressed: Vec<_> = checks.iter().filter(|c| !c.ok).collect();
                if !regressed.is_empty() && enforced {
                    eprintln!(
                        "perf-regression gate FAILED: {} of {} rows regressed beyond {:.0}% \
                         versus {path}",
                        regressed.len(),
                        checks.len(),
                        opts.baseline_tolerance * 100.0
                    );
                    std::process::exit(1);
                }
                eprintln!(
                    "perf-regression gate {}: {} rows compared against {path} ({} regressed, \
                     tolerance {:.0}%)",
                    if enforced {
                        "passed"
                    } else {
                        "reported (advisory)"
                    },
                    checks.len(),
                    regressed.len(),
                    opts.baseline_tolerance * 100.0
                );
            }
            Err(e) => {
                eprintln!("perf-regression gate could not run: {e}");
                std::process::exit(1);
            }
        }
    }
}
