//! `profile_seq` — a minimal timing loop for the sequential sorting path,
//! kept as the profiling entry point for accounting/engine work (small
//! enough to run under `gprofng collect app` or `perf record` without the
//! full E21 harness around it).
//!
//! ```text
//! cargo run --release -p bench --bin profile_seq -- [n] [jobs] [mode]
//!   n     elements per sort          (default 1024)
//!   jobs  sorts per measured pass    (default 200)
//!   mode  batched | per-access       (default batched; per-access also
//!                                     turns zero-fill elision off, i.e.
//!                                     the full reference engine)
//! ```
//!
//! One untimed warm-up pass precedes the measured pass, mirroring the E21
//! `matrix-sequential` methodology.

use abisort::{GpuAbiSorter, SortConfig};
use std::time::Instant;
use stream_arch::{AccountingMode, GpuProfile, StreamProcessor};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let jobs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mode = match std::env::args().nth(3).as_deref() {
        Some("per-access") => AccountingMode::PerAccess,
        _ => AccountingMode::Batched,
    };
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let inputs: Vec<Vec<stream_arch::Value>> =
        (0..jobs).map(|j| workloads::uniform(n, j as u64)).collect();
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    proc.set_accounting_mode(mode);
    proc.arena().set_elision(mode == AccountingMode::Batched);
    let run_all = |proc: &mut StreamProcessor| {
        for input in &inputs {
            let _ = sorter.sort_run(proc, input).expect("sort failed");
        }
    };
    run_all(&mut proc);
    let started = Instant::now();
    run_all(&mut proc);
    println!(
        "{jobs} sorts of n={n} [{mode:?}]: {:.1} ms",
        started.elapsed().as_secs_f64() * 1e3
    );
}
