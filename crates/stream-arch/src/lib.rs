//! # stream-arch — a software stream-processor simulator
//!
//! This crate models the *target architecture* of the GPU-ABiSort paper
//! (Greß & Zachmann, IPDPS 2006): a stream processor in the spirit of the
//! 2005/2006-era programmable GPU fragment pipeline, programmed in the
//! stream programming model (Brook-style):
//!
//! * **Streams** are ordered sets of elements living in stream memory.
//!   Logically they are 1D; physically they are laid out in a 2D grid
//!   (GPU texture) through a configurable 1D→2D mapping
//!   ([`layout::RowMajor2D`] or [`layout::ZOrder2D`]).
//! * **Substreams** are contiguous ranges — or, for hardware that supports
//!   it, sets of disjoint ranges — of a stream ([`stream::SubStream`]).
//! * **Kernels** are per-element programs. A kernel instance may
//!   - read a fixed number of elements *linearly* from each input stream
//!     (streaming read),
//!   - read arbitrary elements from *gather* streams (random-access read),
//!   - read values from *iterator streams* (index generators that cost no
//!     memory traffic),
//!   - and write a fixed number of elements *linearly* to each output
//!     substream (`push_onto_stream`).
//!     Random-access *writes* (scatter) are not expressible — exactly
//!     the restriction the paper designs around.
//! * **Stream operations** launch a kernel over every element of a
//!   substream. Each operation carries a fixed launch overhead; the work of
//!   all kernel instances is distributed over `p` processor units.
//!
//! On top of the functional simulation the crate keeps a detailed
//! [`metrics::Counters`] record (stream operations, kernel instances,
//! streaming reads/writes, gathers, texture-cache behaviour, bytes moved)
//! and converts it into a simulated running time via a calibrated
//! [`profile::GpuProfile`] cost model. This is the substitution for the
//! GeForce 6800 / 7800 hardware of the paper's evaluation: absolute times
//! differ, but the quantities the paper's claims rest on (operation counts,
//! total work, locality, scaling with `p`) are charged faithfully.
//!
//! The kernels are *actually executed* (on the host CPU, optionally on `p`
//! worker threads via [`executor::StreamProcessor`]), so every experiment
//! also verifies functional correctness of the sorting algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod cache;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod layout;
pub mod metrics;
pub mod profile;
pub mod stream;
pub mod telemetry;
pub mod transfer;
pub mod value;

pub use arena::{ArenaStats, StreamArena};
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use error::{Result, StreamError};
pub use executor::{ExecMode, PlanMode, StageCopy, StageFusion, StreamProcessor, SubLaunch};
pub use kernel::{AccountingMode, GatherView, IterStream, KernelCtx, ReadView, WriteView};
pub use layout::{Addr2D, Layout, Mapping1Dto2D, RowMajor2D, ZOrder2D};
pub use metrics::{CostBreakdown, Counters, SimTime};
pub use profile::GpuProfile;
pub use stream::{BlockSet, Stream, SubStream};
pub use telemetry::{HistogramSummary, LogHistogram, TraceEvent, TraceSink};
pub use transfer::{BusKind, DeviceLink, TransferModel};
pub use value::{Node, StreamElement, Value, NULL_INDEX};
