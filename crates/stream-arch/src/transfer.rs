//! Host ↔ device transfer model (Section 8 of the paper).
//!
//! The paper's timings assume the input already resides in GPU memory, but
//! Section 8 quantifies the cost of getting it there and back for an
//! otherwise CPU-based application: transferring 2²⁰ value/pointer pairs to
//! the GPU and back takes roughly 100 ms over the AGP bus and roughly 20 ms
//! over PCI Express. [`TransferModel`] reproduces those figures with a
//! simple asymmetric-bandwidth model (upload is much faster than readback
//! on AGP; PCI Express is symmetric and faster), so experiment E11 can show
//! that the transfer overhead is small relative to the sorting speed-up.

use serde::{Deserialize, Serialize};

/// The host bus connecting CPU and GPU memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusKind {
    /// AGP 8×: fast upload, slow readback (Table 2 system).
    Agp8x,
    /// PCI Express ×16: symmetric, faster both ways (Table 3 system).
    PciExpressX16,
}

impl BusKind {
    /// Upload (host → device) bandwidth in MB/s.
    pub fn upload_mb_s(&self) -> f64 {
        match self {
            BusKind::Agp8x => 250.0,
            BusKind::PciExpressX16 => 1000.0,
        }
    }

    /// Readback (device → host) bandwidth in MB/s.
    pub fn readback_mb_s(&self) -> f64 {
        match self {
            BusKind::Agp8x => 120.0,
            BusKind::PciExpressX16 => 900.0,
        }
    }

    /// Fixed per-transfer latency in milliseconds (driver + DMA setup).
    pub fn latency_ms(&self) -> f64 {
        match self {
            BusKind::Agp8x => 0.4,
            BusKind::PciExpressX16 => 0.15,
        }
    }

    /// Time to move `bytes` bytes in one direction and the same amount back
    /// (round trip of an equally sized input and output), in ms. This is
    /// what [`crate::GpuProfile::simulate`] charges for
    /// `Counters::transfer_bytes`, which records the *round-trip* volume.
    pub fn transfer_ms(&self, round_trip_bytes: u64) -> f64 {
        if round_trip_bytes == 0 {
            return 0.0;
        }
        let half = round_trip_bytes as f64 / 2.0;
        let up = half / (self.upload_mb_s() * 1e6) * 1e3;
        let down = half / (self.readback_mb_s() * 1e6) * 1e3;
        2.0 * self.latency_ms() + up + down
    }
}

/// Transfer-time model for explicit experiments (E11).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// The bus being modelled.
    pub bus: BusKind,
}

impl TransferModel {
    /// Create a model for the given bus.
    pub fn new(bus: BusKind) -> Self {
        TransferModel { bus }
    }

    /// Time in ms to upload `n` elements of `elem_bytes` bytes each.
    pub fn upload_ms(&self, n: usize, elem_bytes: usize) -> f64 {
        self.bus.latency_ms() + (n * elem_bytes) as f64 / (self.bus.upload_mb_s() * 1e6) * 1e3
    }

    /// Time in ms to read back `n` elements of `elem_bytes` bytes each.
    pub fn readback_ms(&self, n: usize, elem_bytes: usize) -> f64 {
        self.bus.latency_ms() + (n * elem_bytes) as f64 / (self.bus.readback_mb_s() * 1e6) * 1e3
    }

    /// Round-trip time in ms (upload + readback of the same volume).
    pub fn round_trip_ms(&self, n: usize, elem_bytes: usize) -> f64 {
        self.upload_ms(n, elem_bytes) + self.readback_ms(n, elem_bytes)
    }
}

/// How two devices of a multi-GPU system exchange stream data.
///
/// The paper's machines have a single GPU, so Section 8 only models the
/// host ↔ device bus. A sharded sorter spreads one problem over several
/// stream processors and must pay for moving the sorted shards back
/// together — the *inter-device hop*. Two eras of that hop are modelled:
///
/// * [`DeviceLink::HostStaged`] — the only option on the paper's hardware:
///   a device-to-device move is a readback into host memory followed by an
///   upload on the shared bus, so hops from different devices *serialize*
///   on the bus.
/// * [`DeviceLink::PeerToPeer`] — a direct link (PCIe peer-to-peer or an
///   SLI-bridge-style interconnect): one crossing at the link bandwidth
///   with a single setup latency.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DeviceLink {
    /// Staged through host memory on the shared host bus.
    HostStaged {
        /// The shared host bus both crossings use.
        bus: BusKind,
    },
    /// A direct device-to-device link.
    PeerToPeer {
        /// One-way link bandwidth in MB/s.
        bandwidth_mb_s: f64,
        /// Per-hop setup latency in milliseconds.
        latency_ms: f64,
    },
}

impl DeviceLink {
    /// The host-staged hop over the given bus (the 2006-era default).
    pub fn host_staged(bus: BusKind) -> Self {
        DeviceLink::HostStaged { bus }
    }

    /// A PCI-Express-class peer-to-peer link.
    pub fn pcie_peer() -> Self {
        DeviceLink::PeerToPeer {
            bandwidth_mb_s: 1_000.0,
            latency_ms: 0.1,
        }
    }

    /// Time in ms to move `bytes` bytes from one device to another.
    pub fn hop_ms(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        match self {
            DeviceLink::HostStaged { bus } => {
                // Readback on the source device plus upload on the target,
                // each with its own DMA setup.
                2.0 * bus.latency_ms()
                    + bytes as f64 / (bus.readback_mb_s() * 1e6) * 1e3
                    + bytes as f64 / (bus.upload_mb_s() * 1e6) * 1e3
            }
            DeviceLink::PeerToPeer {
                bandwidth_mb_s,
                latency_ms,
            } => latency_ms + bytes as f64 / (bandwidth_mb_s * 1e6) * 1e3,
        }
    }

    /// Time in ms to gather shard buffers of the given sizes onto one
    /// device. Hops share the interconnect, so they serialize; the buffer
    /// already resident on the gathering device is passed as 0 bytes and
    /// costs nothing.
    pub fn gather_ms(&self, shard_bytes: &[u64]) -> f64 {
        shard_bytes.iter().map(|&b| self.hop_ms(b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Section 8: "the transfer of 2²⁰ value/pointer pairs from CPU to GPU
    /// and back takes in total roughly 100 ms on our AGP bus PC and roughly
    /// 20 ms on our PCI Express bus PC."
    #[test]
    fn paper_transfer_figures_are_reproduced() {
        let n = 1 << 20;
        let pair_bytes = 8; // f32 key + u32 pointer
        let agp = TransferModel::new(BusKind::Agp8x).round_trip_ms(n, pair_bytes);
        let pcie = TransferModel::new(BusKind::PciExpressX16).round_trip_ms(n, pair_bytes);
        assert!(
            (70.0..140.0).contains(&agp),
            "AGP round trip should be roughly 100 ms, got {agp:.1} ms"
        );
        assert!(
            (12.0..30.0).contains(&pcie),
            "PCIe round trip should be roughly 20 ms, got {pcie:.1} ms"
        );
        assert!(agp > 3.0 * pcie);
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        assert_eq!(BusKind::Agp8x.transfer_ms(0), 0.0);
    }

    #[test]
    fn bus_transfer_matches_model_round_trip() {
        let n = 1 << 18;
        let bytes = (n * 8) as u64;
        let via_bus = BusKind::PciExpressX16.transfer_ms(2 * bytes);
        let via_model = TransferModel::new(BusKind::PciExpressX16).round_trip_ms(n, 8);
        assert!(
            (via_bus - via_model).abs() < 0.05,
            "{via_bus} vs {via_model}"
        );
    }

    #[test]
    fn upload_is_faster_than_readback_on_agp() {
        let m = TransferModel::new(BusKind::Agp8x);
        assert!(m.upload_ms(1 << 20, 8) < m.readback_ms(1 << 20, 8));
    }

    #[test]
    fn host_staged_hop_is_a_readback_plus_an_upload() {
        let bytes = (1u64 << 18) * 8;
        let hop = DeviceLink::host_staged(BusKind::PciExpressX16).hop_ms(bytes);
        let model = TransferModel::new(BusKind::PciExpressX16);
        let staged = model.readback_ms(1 << 18, 8) + model.upload_ms(1 << 18, 8);
        assert!((hop - staged).abs() < 1e-9, "{hop} vs {staged}");
    }

    #[test]
    fn peer_to_peer_beats_host_staging() {
        let bytes = (1u64 << 20) * 8;
        let p2p = DeviceLink::pcie_peer().hop_ms(bytes);
        let staged = DeviceLink::host_staged(BusKind::PciExpressX16).hop_ms(bytes);
        assert!(p2p < staged, "p2p {p2p} vs staged {staged}");
    }

    #[test]
    fn gather_serializes_hops_and_skips_resident_shards() {
        let link = DeviceLink::host_staged(BusKind::PciExpressX16);
        let sizes = [0u64, 1 << 20, 1 << 20, 1 << 20];
        let total = link.gather_ms(&sizes);
        assert_eq!(link.hop_ms(0), 0.0);
        assert!((total - 3.0 * link.hop_ms(1 << 20)).abs() < 1e-9);
    }
}
