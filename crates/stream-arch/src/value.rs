//! Element types that can live in a stream.
//!
//! The paper sorts *value/pointer pairs*: a 32-bit floating point primary
//! sort key plus a 32-bit unique id that doubles as a pointer to the
//! associated record and as the secondary sort key enforcing distinctness
//! (Section 8 and Listing 1 of the paper). [`Value`] is that pair.
//!
//! A bitonic-tree node ([`Node`]) is a value plus the indices of its left
//! and right children (Listing 1, `node_t`). Indices are plain `u32`
//! offsets into the node stream — "instead of real pointers we use
//! indexes".

use std::cmp::Ordering;
use std::fmt;

/// Sentinel child index used for leaves and spare nodes, whose child
/// pointers are never dereferenced ("can be set to arbitrary values" in the
/// paper; we use a recognisable sentinel to catch bugs).
pub const NULL_INDEX: u32 = u32::MAX;

/// Marker trait for types that may be stored in a [`crate::Stream`].
///
/// Stream elements are plain old data: copyable, sendable between the
/// simulated processor units, with a default (zero) bit pattern used when a
/// stream is allocated but not yet initialised.
pub trait StreamElement: Copy + Clone + Default + Send + Sync + 'static {
    /// Size of one element in bytes as charged by the memory-traffic model.
    const BYTES: usize = std::mem::size_of::<Self>();
}

impl StreamElement for u32 {}
impl StreamElement for u64 {}
impl StreamElement for f32 {}
impl StreamElement for (u32, u32) {}

/// A sort element: 32-bit float primary key + 32-bit unique id.
///
/// The id is used as the secondary sort key, which makes all elements
/// distinct (a precondition of adaptive bitonic sorting, Section 4), and in
/// an application plays the role of the pointer to the record being sorted.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Value {
    /// Primary sort key.
    pub key: f32,
    /// Unique id / record pointer; secondary sort key.
    pub id: u32,
}

impl Value {
    /// Create a new value/pointer pair.
    #[inline]
    pub const fn new(key: f32, id: u32) -> Self {
        Value { key, id }
    }

    /// The total order used throughout the library: primary key first,
    /// unique id as tie breaker (paper, Listing 1's `operator >`).
    ///
    /// Keys are compared with `f32::total_cmp`, so NaNs are ordered
    /// deterministically instead of poisoning the sort.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.id.cmp(&other.id))
    }

    /// `self > other` under the total order. This is the single comparison
    /// primitive of the paper's pseudo code.
    #[inline]
    pub fn gt(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Greater
    }

    /// `self < other` under the total order.
    #[inline]
    pub fn lt(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Less
    }

    /// The `index`-th padding sentinel used when a sorter pads its input to
    /// a power-of-two length (Section 4: "this can be achieved by padding
    /// the input sequence").
    ///
    /// Padding elements must sort after *every* possible input element —
    /// including NaN keys — under the total order, so that truncating the
    /// sorted output removes exactly the padding. The key is therefore the
    /// largest positive NaN bit pattern (the maximum of `f32::total_cmp`),
    /// and the ids count down from `u32::MAX` to keep the sentinels
    /// distinct from each other. (An input element that uses this exact
    /// key bit pattern *and* an id in the top padding range would tie with
    /// a sentinel; no realistic key stream produces that NaN payload.)
    #[inline]
    pub fn padding_sentinel(index: usize) -> Self {
        Value {
            key: f32::from_bits(0x7FFF_FFFF),
            id: u32::MAX - index as u32,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.key, self.id)
    }
}

impl StreamElement for Value {}

/// A bitonic-tree node: a [`Value`] plus left/right child indices
/// (Listing 1, `node_t`).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Node {
    /// The element stored in this node.
    pub value: Value,
    /// Index of the left child in the node stream, or [`NULL_INDEX`].
    pub left: u32,
    /// Index of the right child in the node stream, or [`NULL_INDEX`].
    pub right: u32,
}

impl Node {
    /// Create a node with both children set.
    #[inline]
    pub const fn new(value: Value, left: u32, right: u32) -> Self {
        Node { value, left, right }
    }

    /// Create a leaf/spare node whose child indices are the sentinel.
    #[inline]
    pub const fn leaf(value: Value) -> Self {
        Node {
            value,
            left: NULL_INDEX,
            right: NULL_INDEX,
        }
    }
}

impl StreamElement for Node {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_total_order_uses_id_as_secondary_key() {
        let a = Value::new(1.0, 0);
        let b = Value::new(1.0, 1);
        assert!(b.gt(&a));
        assert!(a.lt(&b));
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn value_primary_key_dominates() {
        let a = Value::new(1.0, 100);
        let b = Value::new(2.0, 0);
        assert!(b.gt(&a));
        assert!(!a.gt(&b));
    }

    #[test]
    fn value_orders_nan_deterministically() {
        let nan = Value::new(f32::NAN, 0);
        let one = Value::new(1.0, 0);
        // total_cmp puts positive NaN above all finite numbers.
        assert!(nan.gt(&one));
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn value_ord_matches_total_cmp() {
        let mut v = vec![
            Value::new(3.0, 0),
            Value::new(-1.0, 7),
            Value::new(3.0, 1),
            Value::new(0.0, 2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::new(-1.0, 7),
                Value::new(0.0, 2),
                Value::new(3.0, 0),
                Value::new(3.0, 1),
            ]
        );
    }

    #[test]
    fn node_leaf_has_null_children() {
        let n = Node::leaf(Value::new(5.0, 3));
        assert_eq!(n.left, NULL_INDEX);
        assert_eq!(n.right, NULL_INDEX);
        assert_eq!(n.value, Value::new(5.0, 3));
    }

    #[test]
    fn element_byte_sizes() {
        assert_eq!(<Value as StreamElement>::BYTES, 8);
        assert_eq!(<Node as StreamElement>::BYTES, 16);
        assert_eq!(<u32 as StreamElement>::BYTES, 4);
    }

    #[test]
    fn negative_zero_and_zero_are_ordered_by_total_cmp() {
        let neg = Value::new(-0.0, 5);
        let pos = Value::new(0.0, 5);
        // total_cmp orders -0.0 < +0.0; this keeps the order total and
        // deterministic, which is all the sort requires.
        assert!(pos.gt(&neg));
    }
}
