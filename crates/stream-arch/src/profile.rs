//! Hardware profiles and the calibrated cost model.
//!
//! A [`GpuProfile`] captures the architectural parameters the paper's
//! analysis and evaluation depend on:
//!
//! * the number of fragment-processor units `p` (16 on the GeForce 6800
//!   Ultra, 24 on the GeForce 7800 GTX),
//! * the per-stream-operation launch overhead (Section 3.1: "the (constant)
//!   overhead associated with each stream operation"),
//! * per-access costs and memory bandwidth,
//! * the texture-cache geometry (Section 6.2.2),
//! * the architectural *restrictions*: maximum 2D stream dimension
//!   (Section 3.2), maximum kernel output size (Section 7.1: 16 × 32 bit),
//!   whether input and output streams must be distinct (Section 6.1), and
//!   whether substreams may consist of multiple memory blocks
//!   (Section 5.4).
//!
//! The constants are calibrated so that the *shape* of the paper's Tables 2
//! and 3 is reproduced (who wins, by roughly what factor, and how the gap
//! scales with n); the absolute milliseconds are a property of the
//! simulator, not of the original hardware.

use crate::cache::CacheConfig;
use crate::metrics::{CostBreakdown, Counters, SimTime};
use crate::transfer::BusKind;
use serde::{Deserialize, Serialize};

/// A stream-processor hardware profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Human-readable name used in reports.
    pub name: String,
    /// Number of stream processor units (fragment pipes) `p`.
    pub units: usize,
    /// Launch overhead per stream operation, in microseconds.
    pub op_overhead_us: f64,
    /// Cost of one kernel instance's control/arithmetic work, in
    /// nanoseconds (excluding per-access costs below).
    pub instance_ns: f64,
    /// Cost of streaming-reading one 32-bit word, in nanoseconds.
    pub stream_read_ns: f64,
    /// Cost of gathering (random-access reading) one 32-bit word, in
    /// nanoseconds.
    pub gather_ns: f64,
    /// Cost of writing one 32-bit word, in nanoseconds.
    pub stream_write_ns: f64,
    /// Extra cost of a texture-cache miss, in nanoseconds.
    pub cache_miss_ns: f64,
    /// Stream-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Texture-cache configuration (per unit).
    pub cache: CacheConfig,
    /// Maximum number of elements along one dimension of a 2D stream.
    pub max_texture_dim: u32,
    /// Maximum bytes a single kernel instance may write (Section 7.1).
    pub max_kernel_output_bytes: usize,
    /// Whether a substream may consist of multiple disjoint memory blocks
    /// (needed for the O(log² n) stream-operation variant, Section 5.4).
    pub multi_block_substreams: bool,
    /// Whether input and output streams of one operation must be distinct
    /// (true for the paper's GPUs, Section 6.1).
    pub distinct_io: bool,
    /// Host bus used for input/output transfers (Section 8).
    pub bus: BusKind,
}

impl GpuProfile {
    /// GeForce 6800 Ultra-class profile (Table 2 system: AGP bus,
    /// 16 fragment pipes).
    pub fn geforce_6800() -> Self {
        GpuProfile {
            name: "GeForce 6800 Ultra (simulated)".into(),
            units: 16,
            op_overhead_us: 25.0,
            instance_ns: 18.0,
            stream_read_ns: 1.5,
            gather_ns: 3.0,
            stream_write_ns: 1.5,
            cache_miss_ns: 60.0,
            mem_bandwidth_gbs: 33.6,
            // The NV40 texture-cache hierarchy is considerably smaller than
            // the G70's; this is what makes the row-wise layout hurt more
            // on the 6800 system (the paper's Table 2 a/b split).
            cache: CacheConfig {
                block_edge: 4,
                num_blocks: 128,
                ways: 4,
                element_bytes: 16,
            },
            max_texture_dim: 2048,
            max_kernel_output_bytes: 16 * 4,
            multi_block_substreams: true,
            distinct_io: true,
            bus: BusKind::Agp8x,
        }
    }

    /// GeForce 7800 GTX-class profile (Table 3 system: PCI Express bus,
    /// 24 fragment pipes, higher bandwidth, lower per-op overhead).
    pub fn geforce_7800() -> Self {
        GpuProfile {
            name: "GeForce 7800 GTX (simulated)".into(),
            units: 24,
            op_overhead_us: 18.0,
            instance_ns: 10.0,
            stream_read_ns: 0.8,
            gather_ns: 1.6,
            stream_write_ns: 0.8,
            cache_miss_ns: 35.0,
            mem_bandwidth_gbs: 38.4,
            cache: CacheConfig::geforce_like(16),
            max_texture_dim: 4096,
            max_kernel_output_bytes: 16 * 4,
            multi_block_substreams: true,
            distinct_io: true,
            bus: BusKind::PciExpressX16,
        }
    }

    /// An idealised stream machine without the GPU-specific restrictions:
    /// unlimited texture size, relaxed input/output aliasing, multi-block
    /// substreams. Useful for algorithm-level experiments (operation counts,
    /// scaling with `p`) where hardware quirks would only add noise.
    pub fn idealized(units: usize) -> Self {
        GpuProfile {
            name: format!("idealized stream machine ({units} units)"),
            units,
            op_overhead_us: 10.0,
            instance_ns: 10.0,
            stream_read_ns: 0.5,
            gather_ns: 1.0,
            stream_write_ns: 0.5,
            cache_miss_ns: 20.0,
            mem_bandwidth_gbs: 256.0,
            cache: CacheConfig::geforce_like(16),
            max_texture_dim: 1 << 16,
            max_kernel_output_bytes: usize::MAX,
            multi_block_substreams: true,
            distinct_io: false,
            bus: BusKind::PciExpressX16,
        }
    }

    /// Same profile with a different number of processor units (for the
    /// scalability experiment E14).
    pub fn with_units(mut self, units: usize) -> Self {
        assert!(units >= 1, "at least one processor unit is required");
        self.units = units;
        self
    }

    /// Same profile with/without multi-block substream support (for the
    /// `p = n/log² n` vs `p = n/log n` distinction of Section 5.4).
    pub fn with_multi_block(mut self, enabled: bool) -> Self {
        self.multi_block_substreams = enabled;
        self
    }

    /// Maximum number of elements a single 2D stream can hold.
    pub fn max_stream_elements(&self) -> usize {
        (self.max_texture_dim as usize) * (self.max_texture_dim as usize)
    }

    /// Convert an event-counter record into a simulated running time.
    ///
    /// * launch overhead: `effective_ops × op_overhead`
    /// * compute: per-instance and per-access costs divided over `units`
    /// * memory: cache-fill plus write traffic at `mem_bandwidth`
    /// * compute and memory overlap (max), overhead and transfer serialize.
    pub fn simulate(&self, c: &Counters) -> SimTime {
        let ops = c.effective_ops(self.multi_block_substreams) as f64;
        let op_overhead_ms = ops * self.op_overhead_us / 1_000.0;

        let compute_ns = c.kernel_instances as f64 * self.instance_ns
            + c.stream_reads as f64 * self.stream_read_ns
            + c.gathers as f64 * self.gather_ns
            + c.stream_writes as f64 * self.stream_write_ns
            + c.cache.misses as f64 * self.cache_miss_ns;
        let compute_ms = compute_ns / self.units as f64 / 1_000_000.0;

        let memory_ms = c.traffic_bytes() as f64 / (self.mem_bandwidth_gbs * 1e9) * 1_000.0;

        let transfer_ms = self.bus.transfer_ms(c.transfer_bytes);

        SimTime::from_breakdown(CostBreakdown {
            op_overhead_ms,
            compute_ms,
            memory_ms,
            transfer_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_unit_counts() {
        assert_eq!(GpuProfile::geforce_6800().units, 16);
        assert_eq!(GpuProfile::geforce_7800().units, 24);
        assert_eq!(GpuProfile::idealized(4).units, 4);
    }

    #[test]
    fn with_units_scales_compute_time() {
        let c = Counters {
            kernel_instances: 1_000_000,
            launches: 10,
            ..Counters::default()
        };
        let p1 = GpuProfile::idealized(1).simulate(&c);
        let p4 = GpuProfile::idealized(4).simulate(&c);
        assert!(p1.breakdown.compute_ms > 3.9 * p4.breakdown.compute_ms);
    }

    #[test]
    fn op_overhead_proportional_to_ops() {
        let c1 = Counters {
            launches: 100,
            ..Counters::default()
        };
        let c2 = Counters {
            launches: 200,
            ..Counters::default()
        };
        let p = GpuProfile::geforce_6800();
        assert!(
            (2.0 * p.simulate(&c1).breakdown.op_overhead_ms
                - p.simulate(&c2).breakdown.op_overhead_ms)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn multi_block_profile_charges_steps_not_launches() {
        let c = Counters {
            launches: 100,
            steps: 10,
            ..Counters::default()
        };
        let multi = GpuProfile::geforce_6800();
        let single = GpuProfile::geforce_6800().with_multi_block(false);
        assert!(
            multi.simulate(&c).breakdown.op_overhead_ms
                < single.simulate(&c).breakdown.op_overhead_ms
        );
    }

    #[test]
    fn seventyeight_hundred_is_faster_than_six_eight_hundred() {
        let c = Counters {
            launches: 500,
            steps: 300,
            kernel_instances: 4_000_000,
            stream_reads: 8_000_000,
            gathers: 4_000_000,
            stream_writes: 8_000_000,
            bytes_read: 300_000_000,
            bytes_written: 150_000_000,
            ..Counters::default()
        };
        let t68 = GpuProfile::geforce_6800().simulate(&c).total_ms;
        let t78 = GpuProfile::geforce_7800().simulate(&c).total_ms;
        assert!(t78 < t68, "7800 ({t78} ms) should beat 6800 ({t68} ms)");
    }

    #[test]
    fn max_stream_elements_is_square_of_dim() {
        assert_eq!(
            GpuProfile::geforce_6800().max_stream_elements(),
            2048 * 2048
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_units_rejected() {
        let _ = GpuProfile::idealized(4).with_units(0);
    }
}
