//! Texture-cache model.
//!
//! Current GPUs (in the paper's 2006 sense) route *all* reads — streaming
//! reads as well as gathers — through the texture cache, whose blocks hold
//! square or near-square 2D regions of the texture (Hakura & Gupta 1997,
//! cited in Section 6.2.2). The consequence the paper exploits is that
//! reading a long, skinny 1D range of a row-wise-mapped stream touches many
//! cache blocks and wastes most of each block fill, while the same range
//! under the Z-order mapping is a compact square tile.
//!
//! [`CacheSim`] models exactly that: a set-associative cache of
//! `block_edge × block_edge` element tiles with LRU replacement. A miss
//! charges a full tile fill to the memory-traffic counter; the resulting
//! read-bandwidth difference between the row-wise and Z-order layouts is
//! what separates GPU-ABiSort variants (a) and (b) in Table 2.

use serde::{Deserialize, Serialize};

/// Configuration of the texture cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Edge length (in elements) of the square region covered by one cache
    /// block. 8 means an 8×8-element tile per block.
    pub block_edge: u32,
    /// Total number of cache blocks.
    pub num_blocks: u32,
    /// Associativity (blocks per set). `num_blocks` must be a multiple.
    pub ways: u32,
    /// Bytes of one stored element, used to charge fill traffic.
    pub element_bytes: u32,
}

impl CacheConfig {
    /// A cache resembling the texture-cache hierarchy of the paper's GPUs:
    /// 4×4-element tiles (a 256-byte cache block for the 16-byte `float4`
    /// texels GPU-ABiSort stores its nodes in — the square cache blocks of
    /// Hakura & Gupta that Section 6.2.2 refers to), 512 blocks (the
    /// combined effect of the per-pipe L1 and the shared L2 texture cache),
    /// 4-way set associative.
    pub const fn geforce_like(element_bytes: u32) -> Self {
        CacheConfig {
            block_edge: 4,
            num_blocks: 512,
            ways: 4,
            element_bytes,
        }
    }

    /// Bytes fetched from memory when one cache block is filled.
    #[inline]
    pub fn block_fill_bytes(&self) -> u64 {
        (self.block_edge as u64) * (self.block_edge as u64) * self.element_bytes as u64
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::geforce_like(8)
    }
}

/// Aggregated cache statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of element accesses routed through the cache.
    pub accesses: u64,
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that required a block fill.
    pub misses: u64,
    /// Bytes fetched from stream memory for block fills.
    pub fill_bytes: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 if there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merge another unit's statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.fill_bytes += other.fill_bytes;
    }
}

/// A set-associative LRU cache over 2D element tiles.
///
/// Each simulated processor unit owns one `CacheSim` (GPUs of that era had
/// per-pipe texture caches), so the simulation stays deterministic under
/// parallel execution: a unit's access sequence depends only on the
/// instances assigned to it.
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    num_sets: u32,
    /// `sets[set * ways + way]` = tag of the cached tile, or `u64::MAX`.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

const EMPTY_TAG: u64 = u64::MAX;

impl CacheSim {
    /// Create an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.block_edge.is_power_of_two(),
            "block edge must be a power of two"
        );
        assert!(
            config.ways >= 1 && config.num_blocks.is_multiple_of(config.ways),
            "num_blocks must be a multiple of ways"
        );
        let num_sets = config.num_blocks / config.ways;
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        CacheSim {
            config,
            num_sets,
            tags: vec![EMPTY_TAG; config.num_blocks as usize],
            stamps: vec![0; config.num_blocks as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Simulate a read of the element at 2D coordinate `(x, y)` of stream
    /// `stream_id`. Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, stream_id: u64, x: u32, y: u32) -> bool {
        let shift = self.config.block_edge.trailing_zeros();
        self.access_tile_run(stream_id, x >> shift, y >> shift, 1)
    }

    /// Simulate `count` consecutive reads that all fall into the cache tile
    /// `(bx, by)` of stream `stream_id` (tile coordinates are element
    /// coordinates divided by the block edge). Returns `true` when the
    /// *first* of those reads hits.
    ///
    /// This is the batched form of [`CacheSim::access`]: after the first
    /// read of a run the tile is resident, so the remaining `count − 1`
    /// reads are hits that only advance the clock and refresh the tile's
    /// LRU stamp. One probe therefore charges the whole run with statistics,
    /// stamps and clock byte-identical to `count` single-element accesses.
    #[inline]
    pub fn access_tile_run(&mut self, stream_id: u64, bx: u32, by: u32, count: u64) -> bool {
        let (hit, _, _) = self.access_tile_run_slot(stream_id, bx, by, count);
        hit
    }

    /// [`CacheSim::access_tile_run`] that additionally reports the tag and
    /// the slot the tile now occupies, so callers can service later probes
    /// of the same tile through [`CacheSim::try_fast_hit`].
    #[inline]
    pub fn access_tile_run_slot(
        &mut self,
        stream_id: u64,
        bx: u32,
        by: u32,
        count: u64,
    ) -> (bool, u64, u32) {
        // A hard precondition even in release builds: the miss path below
        // charges `count - 1` hits, which would wrap on an empty run.
        assert!(count > 0, "a tile run has at least one access");
        self.clock += count;
        self.stats.accesses += count;
        let bx = bx as u64;
        let by = by as u64;
        // Tag combines the stream identity and the tile coordinate.
        let tag = (stream_id << 40) ^ (by << 20) ^ bx;
        let set = ((bx ^ by.wrapping_mul(0x9E37_79B9) ^ stream_id.wrapping_mul(0x85EB_CA6B))
            & (self.num_sets as u64 - 1)) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let set_tags = &self.tags[base..base + ways];

        // Look for a hit.
        if let Some(w) = set_tags.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.clock;
            self.stats.hits += count;
            return (true, tag, (base + w) as u32);
        }
        // Miss on the first access: evict the LRU way and fill; the rest of
        // the run hits the freshly filled tile.
        self.stats.misses += 1;
        self.stats.hits += count - 1;
        self.stats.fill_bytes += self.config.block_fill_bytes();
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (w, &t) in set_tags.iter().enumerate() {
            if t == EMPTY_TAG {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        (false, tag, (base + victim) as u32)
    }

    /// Service a run of `count` accesses to a tile previously reported at
    /// `(tag, slot)` by [`CacheSim::access_tile_run_slot`], *if* the tile
    /// is still resident there. Returns `false` without touching anything
    /// when it was evicted — the caller falls back to the full probe. A
    /// successful fast hit is byte-identical to the full probe's hit path
    /// (statistics, stamp, clock).
    #[inline]
    pub fn try_fast_hit(&mut self, tag: u64, slot: u32, count: u64) -> bool {
        let slot = slot as usize;
        if self.tags.get(slot) == Some(&tag) {
            self.clock += count;
            self.stats.accesses += count;
            self.stats.hits += count;
            self.stamps[slot] = self.clock;
            true
        } else {
            false
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset contents and statistics. Untouched caches (every access bumps
    /// the clock) return immediately, so resetting a many-unit processor
    /// that only ever ran sequentially does not refill two dozen tag
    /// arrays per run.
    pub fn reset(&mut self) {
        if self.clock == 0 {
            return;
        }
        self.tags.fill(EMPTY_TAG);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheSim {
        CacheSim::new(CacheConfig {
            block_edge: 4,
            num_blocks: 8,
            ways: 2,
            element_bytes: 8,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(1, 0, 0));
        assert!(c.access(1, 0, 0));
        assert!(c.access(1, 3, 3)); // same 4x4 tile
        assert!(!c.access(1, 4, 0)); // next tile
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn different_streams_do_not_alias() {
        let mut c = small_cache();
        assert!(!c.access(1, 0, 0));
        assert!(!c.access(2, 0, 0));
        assert!(c.access(1, 0, 0) || c.access(2, 0, 0));
    }

    #[test]
    fn fill_bytes_charged_per_miss() {
        let mut c = small_cache();
        c.access(0, 0, 0);
        c.access(0, 100, 100);
        assert_eq!(c.stats().fill_bytes, 2 * 4 * 4 * 8);
    }

    #[test]
    fn square_walk_beats_row_walk() {
        // Walking a 32x32 square region (1024 elements) touches 64 tiles;
        // walking a 1x1024 row strip touches 256 tiles of which only 4
        // elements each are used. The square walk must produce a clearly
        // better hit rate — this is the mechanism behind Z-order vs
        // row-wise (Section 6.2.2).
        let mut sq = CacheSim::new(CacheConfig::geforce_like(8));
        for y in 0..32u32 {
            for x in 0..32u32 {
                sq.access(0, x, y);
            }
        }
        let mut row = CacheSim::new(CacheConfig::geforce_like(8));
        for x in 0..1024u32 {
            row.access(0, x, 0);
        }
        assert!(sq.stats().hit_rate() > row.stats().hit_rate());
        assert!(sq.stats().fill_bytes < row.stats().fill_bytes);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way sets: touching three distinct tiles that map to the same set
        // evicts the first.
        let mut c = CacheSim::new(CacheConfig {
            block_edge: 4,
            num_blocks: 2,
            ways: 2,
            element_bytes: 8,
        });
        // With a single set, any three distinct tiles collide.
        assert!(!c.access(0, 0, 0));
        assert!(!c.access(0, 4, 0));
        assert!(!c.access(0, 8, 0));
        // (0,0) was evicted; (4,0) should still be resident.
        assert!(c.access(0, 4, 0));
        assert!(!c.access(0, 0, 0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small_cache();
        c.access(0, 0, 0);
        c.access(0, 0, 0);
        c.reset();
        assert_eq!(c.stats(), &CacheStats::default());
        assert!(!c.access(0, 0, 0));
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            fill_bytes: 1024,
        };
        let b = CacheStats {
            accesses: 2,
            hits: 1,
            misses: 1,
            fill_bytes: 256,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 12);
        assert_eq!(a.hits, 7);
        assert_eq!(a.misses, 5);
        assert_eq!(a.fill_bytes, 1280);
        assert!((a.hit_rate() - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn tile_run_is_byte_identical_to_repeated_accesses() {
        // Any interleaving of tile runs must leave the cache (tags, stamps,
        // clock) and statistics exactly as the per-access walk does — this
        // is what lets the batched accounting charge a whole run with one
        // probe.
        let walk: Vec<(u64, u32, u32, u64)> = vec![
            (1, 0, 0, 7),  // 7 accesses inside tile (0,0)
            (1, 5, 1, 3),  // different tile, same stream
            (2, 0, 0, 4),  // same tile coordinate, different stream
            (1, 0, 0, 1),  // back to the first tile
            (1, 9, 9, 16), // a fresh tile
            (2, 0, 0, 2),
        ];
        let mut single = small_cache();
        for &(id, x, y, count) in &walk {
            for _ in 0..count {
                single.access(id, x, y);
            }
        }
        let mut batched = small_cache();
        let shift = batched.config().block_edge.trailing_zeros();
        for &(id, x, y, count) in &walk {
            batched.access_tile_run(id, x >> shift, y >> shift, count);
        }
        assert_eq!(single.stats(), batched.stats());
        assert_eq!(single.tags, batched.tags);
        assert_eq!(single.stamps, batched.stamps);
        assert_eq!(single.clock, batched.clock);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block_edge() {
        let _ = CacheSim::new(CacheConfig {
            block_edge: 3,
            num_blocks: 8,
            ways: 2,
            element_bytes: 8,
        });
    }
}
