//! Streams, substreams and block sets.
//!
//! A [`Stream`] is an ordered set of elements in stream memory (Section 3.1
//! of the paper). Logically it is addressed with 1D indices; physically the
//! simulator associates a [`Layout`] with it that determines the 2D texture
//! coordinate of every element (Section 6.2) — the texture-cache model uses
//! that coordinate to decide which cache tile an access falls into.
//!
//! A substream is "a contiguous range of elements from a given stream", or
//! on hardware that supports it "multiple non-overlapping ranges of
//! elements" (Section 3.1). [`BlockSet`] is that description: an ordered
//! list of disjoint `(start, len)` ranges. Kernel instances read and write
//! substreams *linearly*: logical position `i` of the substream is the
//! `i`-th element when walking the blocks in order.

use crate::error::{Result, StreamError};
use crate::layout::Layout;
use crate::value::StreamElement;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// A stream of elements in simulated stream memory.
#[derive(Debug, Clone)]
pub struct Stream<T> {
    name: String,
    id: u64,
    cache_tag: u64,
    layout: Layout,
    data: Vec<T>,
}

/// FNV-1a hash of a stream name — the process-independent identity the
/// cache model keys on.
fn name_tag(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl<T: StreamElement> Stream<T> {
    /// Allocate a stream of `len` default-initialised elements.
    pub fn new(name: impl Into<String>, len: usize, layout: Layout) -> Self {
        let name = name.into();
        Stream {
            cache_tag: name_tag(&name),
            name,
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            layout,
            data: vec![T::default(); len],
        }
    }

    /// Create a stream from existing data.
    pub fn from_vec(name: impl Into<String>, data: Vec<T>, layout: Layout) -> Self {
        let name = name.into();
        Stream {
            cache_tag: name_tag(&name),
            name,
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            layout,
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The stream's unique identity within the process (used by the
    /// input/output aliasing checks).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The stream's *stable* identity used by the texture-cache model:
    /// derived from the name, not from the process-global allocation
    /// counter, so two identical runs produce identical cache statistics
    /// (and therefore identical simulated times) regardless of how many
    /// streams the process allocated before them.
    pub fn cache_tag(&self) -> u64 {
        self.cache_tag
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The 1D→2D layout of this stream.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Change the layout (e.g. to compare row-wise vs Z-order on the same
    /// data). This only affects how accesses are charged, not the logical
    /// contents.
    pub fn set_layout(&mut self, layout: Layout) {
        self.layout = layout;
    }

    /// Host-side read of the whole stream (not charged; corresponds to
    /// reading back the texture for verification).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Host-side mutable access (not charged; corresponds to uploading data
    /// from the host).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Host-side read of one element.
    pub fn get(&self, index: usize) -> T {
        self.data[index]
    }

    /// Host-side write of one element.
    pub fn set(&mut self, index: usize, value: T) {
        self.data[index] = value;
    }

    /// Host-side copy of a slice into the stream at `offset`.
    pub fn write_at(&mut self, offset: usize, values: &[T]) {
        self.data[offset..offset + values.len()].copy_from_slice(values);
    }

    /// Borrowed host-side read of a contiguous range. This is the
    /// zero-copy readback path: callers that only need to *look at* stream
    /// contents (verification, value extraction) borrow instead of paying
    /// a `to_vec()` copy.
    pub fn range(&self, start: usize, len: usize) -> &[T] {
        &self.data[start..start + len]
    }

    /// Host-side copy of a contiguous range. Use [`Stream::range`] when a
    /// borrowed read suffices.
    pub fn read_range(&self, start: usize, len: usize) -> Vec<T> {
        self.range(start, len).to_vec()
    }

    /// Consume the stream and return its backing buffer (the recycle hook
    /// used by [`crate::StreamArena`]).
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// A read-only host view of a substream.
    pub fn view(&self, blocks: &BlockSet) -> SubStream<'_, T> {
        SubStream {
            stream: self,
            blocks: blocks.clone(),
        }
    }

    /// Validate that a block set lies within this stream.
    pub fn check_blocks(&self, blocks: &BlockSet) -> Result<()> {
        for &(start, len) in blocks.blocks() {
            if start + len > self.data.len() {
                return Err(StreamError::SubStreamOutOfBounds {
                    stream_len: self.data.len(),
                    start,
                    end: start + len,
                });
            }
        }
        Ok(())
    }
}

/// A read-only host-side view of a substream (used to set up inputs and to
/// read results back for verification; kernel-side access goes through the
/// views in [`crate::kernel`]).
#[derive(Debug)]
pub struct SubStream<'a, T> {
    stream: &'a Stream<T>,
    blocks: BlockSet,
}

impl<'a, T: StreamElement> SubStream<'a, T> {
    /// Number of elements in the substream.
    pub fn len(&self) -> usize {
        self.blocks.total()
    }

    /// Whether the substream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collect the substream contents in logical order.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for &(start, len) in self.blocks.blocks() {
            out.extend_from_slice(&self.stream.as_slice()[start..start + len]);
        }
        out
    }

    /// Element at logical position `pos`.
    pub fn get(&self, pos: usize) -> T {
        self.stream.get(self.blocks.locate(pos))
    }
}

/// An ordered set of disjoint `(start, len)` element ranges describing a
/// substream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSet {
    /// Inline storage for the single-range case, so the block sets the
    /// sort drivers build on every launch never touch the allocator.
    single: [(usize, usize); 1],
    /// Multi-block storage; empty (unallocated) for single-range sets.
    blocks: Vec<(usize, usize)>,
    /// Exclusive prefix sums of block lengths, plus the total at the end;
    /// empty (unallocated) for single-range sets.
    prefix: Vec<usize>,
    /// Cached total element count, kept inline so the per-access bounds
    /// check does not chase the prefix vector.
    total: usize,
    /// Start of the single range when the set is one contiguous block —
    /// the overwhelmingly common case, for which [`BlockSet::locate`]
    /// degenerates to one addition — `usize::MAX` otherwise.
    single_start: usize,
}

impl BlockSet {
    /// A substream consisting of a single contiguous range. Allocates
    /// nothing.
    pub fn contiguous(start: usize, len: usize) -> Self {
        BlockSet {
            single: [(start, len)],
            blocks: Vec::new(),
            prefix: Vec::new(),
            total: len,
            single_start: start,
        }
    }

    /// A multi-block substream. Blocks keep the given order (the order
    /// defines the logical element order); they must be pairwise disjoint.
    pub fn multi(blocks: Vec<(usize, usize)>) -> Result<Self> {
        // Pairwise overlap check on the (small) block list.
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                let (s1, l1) = blocks[i];
                let (s2, l2) = blocks[j];
                if l1 > 0 && l2 > 0 && s1 < s2 + l2 && s2 < s1 + l1 {
                    return Err(StreamError::OverlappingBlocks {
                        first: (s1, s1 + l1),
                        second: (s2, s2 + l2),
                    });
                }
            }
        }
        // A single-range set normalizes to the inline representation, so
        // `multi(vec![(s, l)])` and `contiguous(s, l)` compare equal.
        if let [(start, len)] = blocks.as_slice() {
            return Ok(Self::contiguous(*start, *len));
        }
        let mut prefix = Vec::with_capacity(blocks.len() + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for &(_, len) in &blocks {
            acc += len;
            prefix.push(acc);
        }
        Ok(BlockSet {
            single: [(0, 0)],
            blocks,
            prefix,
            total: acc,
            single_start: usize::MAX,
        })
    }

    /// Total number of elements.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks().len()
    }

    /// `Some(start)` when the set is a single contiguous range (the shape
    /// every sort driver builds; the views' block accessors use it to
    /// locate a whole per-instance range with one addition).
    #[inline]
    pub fn contiguous_start(&self) -> Option<usize> {
        (self.single_start != usize::MAX).then_some(self.single_start)
    }

    /// The raw blocks.
    #[inline]
    pub fn blocks(&self) -> &[(usize, usize)] {
        if self.single_start != usize::MAX {
            &self.single
        } else {
            &self.blocks
        }
    }

    /// Map a logical substream position to the global element index in the
    /// underlying stream.
    ///
    /// # Panics
    /// Panics if `pos >= self.total()`.
    #[inline]
    pub fn locate(&self, pos: usize) -> usize {
        debug_assert!(pos < self.total(), "position {pos} out of substream bounds");
        // Single contiguous block (every block set the sort drivers build):
        // one addition, no memory traffic.
        if self.single_start != usize::MAX {
            return self.single_start + pos;
        }
        // The multi-block lists used by tests are tiny (a handful of
        // blocks), so a linear scan beats binary search in practice and is
        // branch-predictable.
        let mut b = 0;
        while pos >= self.prefix[b + 1] {
            b += 1;
        }
        let (start, _) = self.blocks[b];
        start + (pos - self.prefix[b])
    }

    /// True if the given global element index is covered by this block set.
    pub fn contains_index(&self, index: usize) -> bool {
        self.blocks()
            .iter()
            .any(|&(start, len)| index >= start && index < start + len)
    }

    /// True if any block of `self` overlaps any block of `other`.
    pub fn overlaps(&self, other: &BlockSet) -> bool {
        self.blocks().iter().any(|&(s1, l1)| {
            other
                .blocks()
                .iter()
                .any(|&(s2, l2)| l1 > 0 && l2 > 0 && s1 < s2 + l2 && s2 < s1 + l1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn stream_ids_are_unique() {
        let a: Stream<u32> = Stream::new("a", 4, Layout::Linear);
        let b: Stream<u32> = Stream::new("b", 4, Layout::Linear);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn stream_host_access_roundtrip() {
        let mut s: Stream<Value> = Stream::new("s", 8, Layout::Linear);
        s.set(3, Value::new(7.5, 1));
        assert_eq!(s.get(3), Value::new(7.5, 1));
        s.write_at(4, &[Value::new(1.0, 2), Value::new(2.0, 3)]);
        assert_eq!(
            s.read_range(4, 2),
            vec![Value::new(1.0, 2), Value::new(2.0, 3)]
        );
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn contiguous_blockset_locates_identity() {
        let b = BlockSet::contiguous(10, 5);
        assert_eq!(b.total(), 5);
        assert_eq!(b.locate(0), 10);
        assert_eq!(b.locate(4), 14);
        assert!(b.contains_index(12));
        assert!(!b.contains_index(15));
    }

    #[test]
    fn multi_blockset_locates_across_blocks() {
        let b = BlockSet::multi(vec![(0, 2), (8, 3), (4, 1)]).unwrap();
        assert_eq!(b.total(), 6);
        assert_eq!(b.locate(0), 0);
        assert_eq!(b.locate(1), 1);
        assert_eq!(b.locate(2), 8);
        assert_eq!(b.locate(4), 10);
        assert_eq!(b.locate(5), 4);
    }

    #[test]
    fn overlapping_blocks_rejected() {
        let err = BlockSet::multi(vec![(0, 4), (3, 2)]).unwrap_err();
        assert!(matches!(err, StreamError::OverlappingBlocks { .. }));
        // Touching blocks are fine.
        assert!(BlockSet::multi(vec![(0, 4), (4, 2)]).is_ok());
        // Zero-length blocks never overlap.
        assert!(BlockSet::multi(vec![(0, 4), (2, 0)]).is_ok());
    }

    #[test]
    fn blockset_overlap_query() {
        let a = BlockSet::contiguous(0, 4);
        let b = BlockSet::contiguous(4, 4);
        let c = BlockSet::multi(vec![(2, 1), (10, 2)]).unwrap();
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(!b.overlaps(&c));
    }

    #[test]
    fn substream_view_reads_in_logical_order() {
        let data: Vec<u32> = (0..10).collect();
        let s = Stream::from_vec("s", data, Layout::Linear);
        let b = BlockSet::multi(vec![(6, 2), (0, 3)]).unwrap();
        let v = s.view(&b);
        assert_eq!(v.len(), 5);
        assert_eq!(v.to_vec(), vec![6, 7, 0, 1, 2]);
        assert_eq!(v.get(1), 7);
        assert_eq!(v.get(2), 0);
        assert!(!v.is_empty());
    }

    #[test]
    fn check_blocks_rejects_out_of_bounds() {
        let s: Stream<u32> = Stream::new("s", 8, Layout::Linear);
        let err = s.check_blocks(&BlockSet::contiguous(4, 8)).unwrap_err();
        assert!(matches!(err, StreamError::SubStreamOutOfBounds { .. }));
        assert!(s.check_blocks(&BlockSet::contiguous(0, 8)).is_ok());
    }
}
