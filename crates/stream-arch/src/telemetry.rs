//! Telemetry: structured tracing spans and mergeable streaming histograms.
//!
//! Two independent facilities live here, both designed to cost nothing
//! when unused:
//!
//! * **Tracing** — a process-wide [`TraceSink`] collecting [`TraceEvent`]
//!   spans from per-thread buffers. Recording is gated on one relaxed
//!   [`AtomicBool`] load ([`enabled`]); with the sink disabled the hot
//!   paths (notably [`crate::StreamProcessor::launch`]) pay exactly that
//!   one branch and allocate nothing. Collected spans export as Chrome
//!   `trace_event` JSON ([`chrome_trace_json`]) loadable in Perfetto or
//!   `chrome://tracing`.
//! * **Histograms** — [`LogHistogram`], an HDR-style log-bucketed
//!   streaming histogram: constant memory per distinct magnitude,
//!   mergeable across threads/runs, with deterministic nearest-rank
//!   quantiles within a guaranteed relative error bound. These replace
//!   sort-the-whole-vector percentile computation in the service metrics.
//!
//! ## Span taxonomy
//!
//! Spans live on two synthetic "processes" so wall-clock executor
//! activity and the simulated service timeline stay separable in the
//! viewer (see `docs/OBSERVABILITY.md` for the full taxonomy):
//!
//! | pid | tid | cat | what |
//! |---|---|---|---|
//! | [`SIM_PID`] | slot | `batch` | one coalesced batch occupying a device slot |
//! | [`SIM_PID`] | per-job | `job` / `queue` / `execute` | one job's span tree |
//! | [`HOST_PID`] | per-thread | `launch` | one inline/sequential stream-operation launch |
//! | [`HOST_PID`] | per-thread | `epoch` | one pooled worker-pool dispatch epoch |
//! | [`HOST_PID`] | per-thread | `wire` / `service` | net-server decode, micro-batch, reply spans |
//!
//! ## Example
//!
//! ```
//! use stream_arch::telemetry::{self, TraceSink};
//!
//! TraceSink::global().set_enabled(true);
//! {
//!     let _span = telemetry::host_span("demo", "outer-work");
//!     // ... traced work ...
//! }
//! TraceSink::global().set_enabled(false);
//!
//! let events = TraceSink::global().take_events();
//! assert!(events.iter().any(|e| e.name == "outer-work"));
//! let json = telemetry::chrome_trace_json(&events);
//! assert!(json.contains("\"traceEvents\""));
//! ```

use parking_lot::Mutex;
use serde::Serializer;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Streaming histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets. 32 sub-buckets bound the quantile
/// relative error by `2^-(SUB_BITS+1)` = 1/64 ≈ 1.6%.
const SUB_BITS: u32 = 5;

/// A mergeable, log-bucketed (HDR-style) streaming histogram for
/// non-negative `f64` samples (milliseconds, in this workspace).
///
/// Buckets are derived from the sample's floating-point representation:
/// the 11 exponent bits plus the top `SUB_BITS` mantissa bits form the
/// bucket index, so each power-of-two octave carries 32 linear
/// sub-buckets. A quantile reports the midpoint of the bucket holding the
/// nearest-rank sample, clamped into `[min, max]` — deterministic, within
/// **1/64 relative error** of the exact sorted-vector percentile, and
/// exact for 0- and 1-sample histograms.
///
/// Out-of-domain samples are clamped, never dropped: NaN and negative
/// values count as `0.0`, `+∞` as [`f64::MAX`].
///
/// ```
/// use stream_arch::telemetry::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [0.25, 1.0, 2.0, 4.0, 100.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!((h.quantile(0.5) - 2.0).abs() / 2.0 <= 1.0 / 64.0);
/// assert_eq!(h.quantile(1.0), 100.0); // max is tracked exactly
///
/// // Histograms merge bucket-wise: h ∪ g ≡ recording every sample into one.
/// let mut g = LogHistogram::new();
/// g.record(8.0);
/// h.merge(&g);
/// assert_eq!(h.count(), 6);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogHistogram {
    /// Samples that clamped to exactly zero.
    zeros: u64,
    /// Sparse positive buckets: index → count.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Clamp a sample into the recordable domain (see the type docs).
    fn clamp(v: f64) -> f64 {
        if v.is_nan() || v <= 0.0 {
            0.0
        } else if v == f64::INFINITY {
            f64::MAX
        } else {
            v
        }
    }

    /// Bucket index of a positive finite sample: exponent bits plus the
    /// top [`SUB_BITS`] mantissa bits.
    fn index(v: f64) -> u32 {
        (v.to_bits() >> (52 - SUB_BITS)) as u32
    }

    /// `[lo, hi)` bounds of bucket `index` (inverse of [`Self::index`]).
    fn bounds(index: u32) -> (f64, f64) {
        let lo = f64::from_bits((index as u64) << (52 - SUB_BITS));
        let hi = f64::from_bits(((index as u64) + 1) << (52 - SUB_BITS));
        (lo, hi)
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let v = Self::clamp(v);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v == 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(Self::index(v)).or_insert(0) += 1;
        }
    }

    /// Fold `other` into `self` bucket-wise. Merging is associative and
    /// commutative: any merge tree over the same samples yields the same
    /// histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the (clamped) samples — exact, not bucketed.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample seen (exact); `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (exact); `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`; `0.0` when empty.
    ///
    /// Matches the rank convention of
    /// [`percentile`](../../sortsvc/metrics/fn.percentile.html)-style
    /// exact computation: the value reported is the midpoint of the
    /// bucket containing the `⌈q·n⌉`-th smallest sample, clamped into
    /// `[min, max]`. Monotone in `q`, so `p99 ≥ p50` always holds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = Self::bounds(idx);
                let mid = lo + (hi - lo) * 0.5;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The fixed summary used in reports and the `STATS` wire snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_ms: self.mean(),
            p50_ms: self.quantile(0.5),
            p90_ms: self.quantile(0.9),
            p99_ms: self.quantile(0.99),
            max_ms: self.max(),
        }
    }
}

/// A fixed-size quantile summary of one [`LogHistogram`], embedded in
/// `ServiceMetrics` and the `STATS` wire snapshot.
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean (ms).
    pub mean_ms: f64,
    /// Median (ms), within 1/64 relative error.
    pub p50_ms: f64,
    /// 90th percentile (ms), within 1/64 relative error.
    pub p90_ms: f64,
    /// 99th percentile (ms), within 1/64 relative error.
    pub p99_ms: f64,
    /// Exact largest sample (ms).
    pub max_ms: f64,
}

// ---------------------------------------------------------------------------
// Trace sink
// ---------------------------------------------------------------------------

/// Synthetic Chrome-trace process id for spans on the *simulated*
/// timeline (service batches and job span trees; timestamps are simulated
/// milliseconds × 1000).
pub const SIM_PID: u32 = 1;

/// Synthetic Chrome-trace process id for spans on the *host wall-clock*
/// timeline (executor launches, pool epochs, net-server stages;
/// timestamps are microseconds since the sink epoch).
pub const HOST_PID: u32 = 2;

/// One complete span. The Chrome exporter turns each into a balanced
/// `"B"`/`"E"` event pair.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Synthetic process id ([`SIM_PID`] or [`HOST_PID`]).
    pub pid: u32,
    /// Track id within the pid (thread, device slot, or job).
    pub tid: u64,
    /// Span name, shown on the span.
    pub name: String,
    /// Span category (the taxonomy row; filterable in Perfetto).
    pub cat: &'static str,
    /// Span start, microseconds on the pid's timeline.
    pub ts_us: f64,
    /// Span duration in microseconds (≥ 0).
    pub dur_us: f64,
    /// Numeric span arguments, shown in the viewer's detail pane.
    pub args: Vec<(&'static str, f64)>,
}

/// Global-sink event cap: a backstop against unbounded memory if tracing
/// is left on for a very long run. Events beyond it are counted as
/// dropped, never silently lost.
const MAX_EVENTS: usize = 1 << 20;

/// Per-thread buffer size; a full buffer flushes into the global sink.
const FLUSH_AT: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The process-wide trace collector.
///
/// Threads record spans into lock-free thread-local buffers; full buffers
/// (and exiting threads) drain into this sink, and
/// [`TraceSink::take_events`] collects everything for export. There is
/// exactly one sink per process ([`TraceSink::global`]).
///
/// ```
/// use stream_arch::telemetry::{self, TraceSink};
///
/// let sink = TraceSink::global();
/// sink.set_enabled(true);
/// drop(telemetry::host_span("example", "step").map(|s| s.arg("items", 3.0)));
/// sink.set_enabled(false);
/// let step = sink
///     .take_events()
///     .into_iter()
///     .find(|e| e.name == "step")
///     .expect("span recorded while enabled");
/// assert_eq!(step.args, vec![("items", 3.0)]);
/// ```
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

impl TraceSink {
    /// The process-wide sink (created on first use; its creation instant
    /// is the zero point of the host-span timeline).
    pub fn global() -> &'static TraceSink {
        static SINK: OnceLock<TraceSink> = OnceLock::new();
        SINK.get_or_init(|| TraceSink {
            events: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        })
    }

    /// Turn recording on or off. Off is the default; while off, every
    /// instrumented hot path pays one relaxed atomic load and nothing
    /// else.
    pub fn set_enabled(&self, on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on (relaxed load — the hot-path gate).
    #[inline]
    pub fn enabled(&self) -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Flush the calling thread's buffer and drain every collected event.
    ///
    /// Live threads other than the caller may still hold sub-`FLUSH_AT`
    /// buffers; scoped worker threads flush on exit, so collect after the
    /// traced work has joined.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        flush_thread();
        std::mem::take(&mut *self.events.lock())
    }

    /// Events dropped at the `MAX_EVENTS` cap since process start.
    pub fn dropped(&self) -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }

    /// Microseconds since the sink epoch, the host-span timeline.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn absorb(&self, batch: &mut Vec<TraceEvent>) {
        let mut events = self.events.lock();
        let room = MAX_EVENTS.saturating_sub(events.len());
        if batch.len() > room {
            DROPPED.fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            batch.truncate(room);
        }
        events.append(batch);
    }
}

/// Whether tracing is on — the one-branch gate every instrumentation
/// site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct LocalBuf(Vec<TraceEvent>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            TraceSink::global().absorb(&mut self.0);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf(Vec::new())) };
    static THREAD_TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Push the calling thread's buffered events into the global sink now
/// (normally they drain when the buffer fills or the thread exits).
pub fn flush_thread() {
    let _ = LOCAL.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.0.is_empty() {
            TraceSink::global().absorb(&mut buf.0);
        }
    });
}

/// A small per-process id for the calling thread, used as the host-span
/// track id (stable for the thread's lifetime).
pub fn thread_tid() -> u64 {
    THREAD_TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Record one complete span. No-op when tracing is off.
pub fn record(event: TraceEvent) {
    if !enabled() {
        return;
    }
    let mut event = Some(event);
    let _ = LOCAL.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.0.push(event.take().expect("taken once"));
        if buf.0.len() >= FLUSH_AT {
            TraceSink::global().absorb(&mut buf.0);
        }
    });
    if let Some(event) = event {
        // Thread-local storage is gone (thread teardown): go direct.
        TraceSink::global().absorb(&mut vec![event]);
    }
}

/// Record a host-clock span that began at `started` and ends now, on the
/// calling thread's track. No-op when tracing is off (callers should
/// check [`enabled`] *before* taking the `Instant` to keep the off path
/// free).
pub fn record_host_span(
    cat: &'static str,
    name: &str,
    started: Instant,
    args: &[(&'static str, f64)],
) {
    if !enabled() {
        return;
    }
    let sink = TraceSink::global();
    let ts_us = started.duration_since(sink.epoch).as_secs_f64() * 1e6;
    record(TraceEvent {
        pid: HOST_PID,
        tid: thread_tid(),
        name: name.to_string(),
        cat,
        ts_us,
        dur_us: started.elapsed().as_secs_f64() * 1e6,
        args: args.to_vec(),
    });
}

/// An RAII host-clock span: records from creation to drop on the calling
/// thread's track. `None` when tracing is off, so the disabled cost is
/// the [`enabled`] branch alone.
#[must_use = "a span guard records when dropped; binding it to _ discards the span immediately"]
pub struct HostSpan {
    cat: &'static str,
    name: String,
    started: Instant,
    args: Vec<(&'static str, f64)>,
}

impl HostSpan {
    /// Attach one numeric argument (builder-style).
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        self.args.push((key, value));
        self
    }
}

impl Drop for HostSpan {
    fn drop(&mut self) {
        record_host_span(self.cat, &self.name, self.started, &self.args);
    }
}

/// Open a host-clock span guard; see [`HostSpan`].
pub fn host_span(cat: &'static str, name: impl Into<String>) -> Option<HostSpan> {
    if !enabled() {
        return None;
    }
    Some(HostSpan {
        cat,
        name: name.into(),
        started: Instant::now(),
        args: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

/// Render spans as Chrome `trace_event` JSON (the `{"traceEvents": [...]}`
/// object form), loadable in Perfetto or `chrome://tracing`.
///
/// Every span becomes one `"ph": "B"` / `"ph": "E"` pair; pairs are
/// emitted per track in properly nested order (children close before
/// their parents), so begin/end events are balanced by construction. A
/// child span whose recorded end would overrun its parent (floating-point
/// rounding) is clamped to the parent's end.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Group span indices per (pid, tid) track.
    let mut tracks: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        tracks.entry((ev.pid, ev.tid)).or_default().push(i);
    }

    let mut s = Serializer::new();
    s.begin_object();
    s.key("traceEvents");
    s.begin_array();
    for indices in tracks.values_mut() {
        // Parents sort before their children: earlier start first, and at
        // equal starts the longer span first.
        indices.sort_by(|&a, &b| {
            events[a]
                .ts_us
                .total_cmp(&events[b].ts_us)
                .then(events[b].dur_us.total_cmp(&events[a].dur_us))
                .then(a.cmp(&b))
        });
        // Emit with an explicit open-span stack: before a span begins,
        // every already-open span that ended at or before its start is
        // closed (innermost first).
        let mut open: Vec<(f64, usize)> = Vec::new();
        for &i in indices.iter() {
            let ev = &events[i];
            while let Some(&(end_us, j)) = open.last() {
                if end_us <= ev.ts_us {
                    emit_end(&mut s, &events[j], end_us);
                    open.pop();
                } else {
                    break;
                }
            }
            let mut end_us = ev.ts_us + ev.dur_us.max(0.0);
            if let Some(&(parent_end, _)) = open.last() {
                end_us = end_us.min(parent_end);
            }
            emit_begin(&mut s, ev);
            open.push((end_us, i));
        }
        while let Some((end_us, j)) = open.pop() {
            emit_end(&mut s, &events[j], end_us);
        }
    }
    s.end_array();
    s.key("displayTimeUnit");
    s.string("ms");
    s.key("droppedEvents");
    s.unsigned(TraceSink::global().dropped() as u128);
    s.end_object();
    s.into_string()
}

fn emit_begin(s: &mut Serializer, ev: &TraceEvent) {
    s.elem(&RawSpanEvent {
        ev,
        phase: "B",
        ts_us: ev.ts_us,
        with_args: true,
    });
}

fn emit_end(s: &mut Serializer, ev: &TraceEvent, end_us: f64) {
    s.elem(&RawSpanEvent {
        ev,
        phase: "E",
        ts_us: end_us,
        with_args: false,
    });
}

/// One `"B"` or `"E"` record of the Chrome `trace_event` array.
struct RawSpanEvent<'a> {
    ev: &'a TraceEvent,
    phase: &'static str,
    ts_us: f64,
    with_args: bool,
}

impl serde::Serialize for RawSpanEvent<'_> {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_object();
        s.key("name");
        s.string(&self.ev.name);
        s.key("cat");
        s.string(self.ev.cat);
        s.key("ph");
        s.string(self.phase);
        s.key("pid");
        s.unsigned(self.ev.pid as u128);
        s.key("tid");
        s.unsigned(self.ev.tid as u128);
        s.key("ts");
        s.float(self.ts_us);
        if self.with_args && !self.ev.args.is_empty() {
            s.key("args");
            s.begin_object();
            for (k, v) in &self.ev.args {
                s.key(k);
                s.float(*v);
            }
            s.end_object();
        }
        s.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile over a sorted slice, the reference
    /// the histogram is checked against.
    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn histogram_edges_are_exact() {
        let empty = LogHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);

        let mut one = LogHistogram::new();
        one.record(7.25);
        // One sample: every quantile is that sample, exactly (min/max
        // clamping collapses the bucket midpoint onto it).
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7.25);
        }
        assert_eq!(one.mean(), 7.25);

        let mut zeros = LogHistogram::new();
        zeros.record(0.0);
        zeros.record(-3.0); // clamps to 0.0
        zeros.record(f64::NAN); // clamps to 0.0
        assert_eq!(zeros.count(), 3);
        assert_eq!(zeros.quantile(0.99), 0.0);
        assert_eq!(zeros.sum(), 0.0);
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<f64> = (1..=1000).map(|i| (i as f64) * 0.37).collect();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&samples, q);
            let approx = h.quantile(q);
            assert!(
                (approx - exact).abs() <= exact / 64.0 + 1e-12,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        assert!(h.quantile(0.99) >= h.quantile(0.5));
    }

    #[test]
    fn histogram_merge_equals_single_recording() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for i in 0..100 {
            let v = (i as f64 * 1.7).sin().abs() * 50.0;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        TraceSink::global().set_enabled(false);
        assert!(host_span("test", "ignored").is_none());
        record(TraceEvent {
            pid: HOST_PID,
            tid: 1,
            name: "ignored".into(),
            cat: "test",
            ts_us: 0.0,
            dur_us: 1.0,
            args: Vec::new(),
        });
        let events = TraceSink::global().take_events();
        assert!(events.iter().all(|e| e.name != "ignored"));
    }

    #[test]
    fn chrome_export_emits_balanced_nested_pairs() {
        // A job-shaped tree: parent [0,10], queue [0,4], execute [4,10],
        // plus a zero-duration child — the rounding edge cases.
        let mk = |name: &str, ts: f64, dur: f64| TraceEvent {
            pid: SIM_PID,
            tid: 9,
            name: name.into(),
            cat: "test",
            ts_us: ts,
            dur_us: dur,
            args: vec![("tenant", 3.0)],
        };
        let events = vec![
            mk("job", 0.0, 10.0),
            mk("queue", 0.0, 4.0),
            mk("zero", 4.0, 0.0),
            mk("execute", 4.0, 10.0), // overruns parent: clamped to 10
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 4);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 4);
        // Nesting: job opens first, execute closes before job.
        let job_b = json.find("\"job\"").unwrap();
        let queue_b = json.find("\"queue\"").unwrap();
        assert!(job_b < queue_b, "parent must open before its child");
    }
}
