//! `StreamArena` — recycling of stream backing buffers.
//!
//! Every GPU-ABiSort run allocates a handful of large intermediate streams
//! (two 2n-node tree streams, two 2n-index pq streams, two n-value scratch
//! streams, a padded copy of the input). A sorting service that executes
//! thousands of jobs on one pooled [`crate::StreamProcessor`] would pay
//! malloc/free — and the accompanying page faults — for each of them on
//! every job. The arena removes that churn: a `Vec<T>` that backed a stream
//! is handed back after the run and the next run of a similar size takes it
//! again instead of allocating.
//!
//! Buffers are binned by *capacity class* (the power of two at or below the
//! buffer's capacity) and by element type, so a request for `len` elements
//! is served by any pooled buffer of class `len.next_power_of_two()` — the
//! same quantization the sort's padded problem sizes already follow. A
//! recycled buffer taken through [`StreamArena::take_vec`] is
//! re-initialized with `T::default()` before reuse, so a stream allocated
//! from the arena is indistinguishable from a freshly constructed one:
//! outputs, counters and simulated times stay byte-identical whether
//! pooling is on or off. Only host wall-clock time changes, which is why
//! the wall-clock harness may flip the [`set_pooling_default`] switch to
//! measure the arena's effect.
//!
//! # Zero-fill elision
//!
//! The default re-initialization is a memset the caller often does not
//! need: the sort's working streams (output trees, pq indices, scratch
//! values) are provably *written before read* — every element a kernel
//! reads was produced by an earlier stream operation of the same run. For
//! those, [`StreamArena::take_vec_uninit`] / [`StreamArena::take_stream_uninit`]
//! skip the refill. The mechanism is a **write watermark**: a recycled
//! buffer keeps its elements and its length (the watermark — everything
//! below it was initialized by a previous run), and an uninit take only
//! default-fills the portion *above* the watermark, so in steady state no
//! element is touched at all. The contents below the watermark are stale
//! data from an earlier run — well-defined values, never uninitialized
//! memory — and the write-before-read property makes them unobservable:
//! the elision proptests assert sorts through uninit buffers are
//! byte-identical to fresh-allocation runs. [`set_elision_default`] turns
//! the elision off process-wide (uninit takes then behave exactly like
//! [`StreamArena::take_vec`]) so the wall-clock harness can measure it.
//!
//! # Byte cap
//!
//! The per-bin bound caps each class, but a long soak over *mixed* job
//! sizes populates ever more classes, so the total pooled footprint was
//! unbounded. [`StreamArena::set_byte_cap`] (or the process-wide
//! [`set_byte_cap_default`]) bounds it: when a hand-back would push the
//! pool past the cap, whole classes are evicted coldest-first (a class is
//! "touched" by every hit and every hand-back) until the pool fits,
//! counted in [`ArenaStats::evicted_bytes`]. Eviction only frees cached
//! buffers — results are unaffected, later takes of an evicted class
//! simply allocate again.

use crate::layout::Layout;
use crate::stream::Stream;
use crate::value::StreamElement;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Upper bound on pooled buffers per (type, capacity class) bin. A sort
/// run keeps at most a handful of same-class streams alive at once, so a
/// small bin bounds arena memory without ever missing in steady state.
const MAX_BUFFERS_PER_CLASS: usize = 8;

static POOLING_DEFAULT: AtomicBool = AtomicBool::new(true);
static ELISION_DEFAULT: AtomicBool = AtomicBool::new(true);
/// 0 encodes "unbounded" — the historical behaviour.
static BYTE_CAP_DEFAULT: AtomicUsize = AtomicUsize::new(0);

/// Set whether newly created arenas pool buffers (default `true`).
///
/// This is a measurement knob for the wall-clock harness and benches: with
/// pooling off every take allocates and every recycle frees, i.e. the
/// pre-arena allocator behaviour. Results are unaffected either way.
pub fn set_pooling_default(enabled: bool) {
    POOLING_DEFAULT.store(enabled, Ordering::Relaxed);
}

/// The process-wide default for newly created arenas.
pub fn pooling_default() -> bool {
    POOLING_DEFAULT.load(Ordering::Relaxed)
}

/// Set whether newly created arenas elide the default refill on
/// [`StreamArena::take_vec_uninit`] (default `true`).
///
/// With elision off, uninit takes behave exactly like
/// [`StreamArena::take_vec`] — the pre-elision memset-on-take behaviour —
/// which is the baseline the wall-clock harness measures against. Results
/// are unaffected either way (the elision proptests pin this down).
pub fn set_elision_default(enabled: bool) {
    ELISION_DEFAULT.store(enabled, Ordering::Relaxed);
}

/// The process-wide zero-fill-elision default for newly created arenas.
pub fn elision_default() -> bool {
    ELISION_DEFAULT.load(Ordering::Relaxed)
}

/// Set the default total pooled-byte cap for newly created arenas
/// (`None` = unbounded, the default).
///
/// Long soaks with mixed job sizes populate many (type, capacity class)
/// bins; without a cap each bin holds up to its per-class bound forever.
/// The cap bounds the arena's total footprint: when a hand-back would
/// exceed it, whole least-recently-used classes are evicted (counted in
/// [`ArenaStats::evicted_bytes`]) until the pool fits again.
pub fn set_byte_cap_default(cap: Option<usize>) {
    BYTE_CAP_DEFAULT.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// The process-wide pooled-byte cap default for newly created arenas.
pub fn byte_cap_default() -> Option<usize> {
    match BYTE_CAP_DEFAULT.load(Ordering::Relaxed) {
        0 => None,
        cap => Some(cap),
    }
}

/// Cumulative arena behaviour, for reuse assertions and reports.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffer requests served.
    pub takes: u64,
    /// Requests served from the pool (no allocation).
    pub hits: u64,
    /// Requests that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers handed back and kept for reuse.
    pub recycled: u64,
    /// Buffers handed back but dropped (pooling off or bin full).
    pub dropped: u64,
    /// Elements whose default refill was skipped by uninit takes (served
    /// below a recycled buffer's write watermark).
    pub elided_elements: u64,
    /// Pooled bytes freed by LRU-class eviction to honour the byte cap.
    pub evicted_bytes: u64,
}

/// Type-erased access to one element type's bins.
trait AnyPool: Send {
    fn class_count(&self) -> usize;
    fn buffer_count(&self) -> usize;
    /// Drop every buffer of `class`, returning the bytes freed.
    fn evict_class(&mut self, class: usize) -> u64;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The bins for one element type: capacity class → cleared buffers.
struct TypedPool<T> {
    bins: HashMap<usize, Vec<Vec<T>>>,
}

impl<T> TypedPool<T> {
    fn new() -> Self {
        TypedPool {
            bins: HashMap::new(),
        }
    }
}

impl<T: StreamElement> AnyPool for TypedPool<T> {
    fn class_count(&self) -> usize {
        self.bins.values().filter(|b| !b.is_empty()).count()
    }
    fn buffer_count(&self) -> usize {
        self.bins.values().map(Vec::len).sum()
    }
    fn evict_class(&mut self, class: usize) -> u64 {
        self.bins
            .remove(&class)
            .map(|bufs| {
                bufs.iter()
                    .map(|b| (b.capacity() * std::mem::size_of::<T>()) as u64)
                    .sum()
            })
            .unwrap_or(0)
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A pool of reusable `Vec<T>` backing buffers keyed by element type and
/// capacity class. See the module documentation.
pub struct StreamArena {
    pools: HashMap<TypeId, Box<dyn AnyPool>>,
    enabled: bool,
    elision: bool,
    /// Upper bound on total pooled bytes across every class; `None` is
    /// unbounded.
    byte_cap: Option<usize>,
    /// Running total of pooled bytes (capacity × element size).
    pooled_bytes: u64,
    /// Classes in least-recently-used order (front = coldest). A class is
    /// touched on every hand-back and every pool hit.
    lru: Vec<(TypeId, usize)>,
    stats: ArenaStats,
}

impl Default for StreamArena {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamArena {
    /// An empty arena. Pooling follows the process-wide default
    /// ([`set_pooling_default`]).
    pub fn new() -> Self {
        StreamArena {
            pools: HashMap::new(),
            enabled: pooling_default(),
            elision: elision_default(),
            byte_cap: byte_cap_default(),
            pooled_bytes: 0,
            lru: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// Whether handed-back buffers are kept for reuse.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable pooling for this arena. Disabling drops all
    /// pooled buffers.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.pools.clear();
            self.lru.clear();
            self.pooled_bytes = 0;
        }
    }

    /// The arena's total pooled-byte cap (`None` = unbounded).
    pub fn byte_cap(&self) -> Option<usize> {
        self.byte_cap
    }

    /// Set the total pooled-byte cap. Lowering it below the current
    /// footprint evicts least-recently-used classes immediately.
    pub fn set_byte_cap(&mut self, cap: Option<usize>) {
        self.byte_cap = cap;
        self.enforce_cap();
    }

    /// Total bytes currently held by pooled buffers (capacity × element
    /// size, summed over every bin).
    pub fn pooled_bytes(&self) -> u64 {
        self.pooled_bytes
    }

    /// Whether uninit takes skip the default refill below the write
    /// watermark.
    pub fn elision_enabled(&self) -> bool {
        self.elision
    }

    /// Enable or disable zero-fill elision for this arena. With elision
    /// off, [`StreamArena::take_vec_uninit`] behaves exactly like
    /// [`StreamArena::take_vec`].
    pub fn set_elision(&mut self, enabled: bool) {
        self.elision = enabled;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of (element type, capacity class) bins currently holding at
    /// least one buffer. Steady-state workloads must not grow this — the
    /// reuse property the tests pin down.
    pub fn class_count(&self) -> usize {
        self.pools.values().map(|p| p.class_count()).sum()
    }

    /// Total pooled buffers across all bins.
    pub fn pooled_buffers(&self) -> usize {
        self.pools.values().map(|p| p.buffer_count()).sum()
    }

    /// The capacity class serving a request for `len` elements.
    #[inline]
    fn class_for(len: usize) -> usize {
        len.next_power_of_two().max(1)
    }

    /// Pop a pooled buffer of `class`, write watermark (length) intact.
    fn pop_pooled<T: StreamElement>(&mut self, class: usize) -> Option<Vec<T>> {
        if !self.enabled {
            return None;
        }
        let key = (TypeId::of::<T>(), class);
        let (popped, emptied) = {
            let bin = self
                .pools
                .get_mut(&key.0)
                .and_then(|p| p.as_any_mut().downcast_mut::<TypedPool<T>>())
                .and_then(|pool| pool.bins.get_mut(&class))?;
            (bin.pop(), bin.is_empty())
        };
        let buf = popped?;
        self.pooled_bytes = self
            .pooled_bytes
            .saturating_sub((buf.capacity() * std::mem::size_of::<T>()) as u64);
        if emptied {
            self.lru.retain(|&k| k != key);
        } else {
            self.touch_lru(key);
        }
        Some(buf)
    }

    /// Mark `key` as the most-recently-used class.
    fn touch_lru(&mut self, key: (TypeId, usize)) {
        if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push(key);
    }

    /// Evict least-recently-used classes until the pool fits the cap.
    fn enforce_cap(&mut self) {
        let Some(cap) = self.byte_cap else { return };
        while self.pooled_bytes > cap as u64 && !self.lru.is_empty() {
            let (tid, class) = self.lru.remove(0);
            let freed = self
                .pools
                .get_mut(&tid)
                .map(|p| p.evict_class(class))
                .unwrap_or(0);
            self.pooled_bytes = self.pooled_bytes.saturating_sub(freed);
            self.stats.evicted_bytes += freed;
        }
    }

    /// An empty buffer with capacity for at least `min_capacity` elements —
    /// pooled if one of the right class is available, freshly allocated
    /// otherwise.
    pub fn take_capacity<T: StreamElement>(&mut self, min_capacity: usize) -> Vec<T> {
        let class = Self::class_for(min_capacity);
        self.stats.takes += 1;
        if let Some(mut buf) = self.pop_pooled::<T>(class) {
            self.stats.hits += 1;
            debug_assert!(buf.capacity() >= class);
            buf.clear();
            return buf;
        }
        self.stats.misses += 1;
        Vec::with_capacity(class)
    }

    /// A buffer of `len` default-initialized elements (the contents a
    /// freshly constructed [`Stream`] would have).
    pub fn take_vec<T: StreamElement>(&mut self, len: usize) -> Vec<T> {
        let mut v = self.take_capacity::<T>(len);
        v.resize(len, T::default());
        v
    }

    /// A buffer of `len` elements with **unspecified contents**: stale data
    /// from the previous run below the recycled buffer's write watermark,
    /// `T::default()` above it (and throughout on a pool miss).
    ///
    /// Only callers that write every element before reading it may use
    /// this — that property is what makes the skipped refill unobservable
    /// (see the module documentation). The contents are always valid values
    /// of `T`, never uninitialized memory; "uninit" refers to the stream
    /// contract, not the memory state.
    pub fn take_vec_uninit<T: StreamElement>(&mut self, len: usize) -> Vec<T> {
        let class = Self::class_for(len);
        self.stats.takes += 1;
        if let Some(mut buf) = self.pop_pooled::<T>(class) {
            self.stats.hits += 1;
            debug_assert!(buf.capacity() >= class);
            if !self.elision {
                // Measurement baseline: behave exactly like `take_vec`.
                buf.clear();
                buf.resize(len, T::default());
                return buf;
            }
            let watermark = buf.len();
            if watermark >= len {
                buf.truncate(len);
                self.stats.elided_elements += len as u64;
            } else {
                // Only the tail above the watermark needs initializing;
                // in steady state (same size class re-taken run after
                // run) this arm never executes.
                buf.resize(len, T::default());
                self.stats.elided_elements += watermark as u64;
            }
            return buf;
        }
        self.stats.misses += 1;
        // A fresh allocation has no initialized prefix to reuse; exposing
        // truly uninitialized memory would be unsound, so pay the fill
        // once. Steady-state takes hit the pool and skip it.
        let mut v: Vec<T> = Vec::with_capacity(class);
        v.resize(len, T::default());
        v
    }

    /// A buffer initialized with a copy of `data` (replaces
    /// `data.to_vec()`).
    pub fn take_vec_from<T: StreamElement>(&mut self, data: &[T]) -> Vec<T> {
        let mut v = self.take_capacity::<T>(data.len());
        v.extend_from_slice(data);
        v
    }

    /// Hand a buffer back for reuse. The contents and length are *kept* —
    /// the length is the buffer's write watermark, which lets a later
    /// [`StreamArena::take_vec_uninit`] of the same class skip the default
    /// refill entirely. The buffer is binned under the largest capacity
    /// class it can serve. Buffers beyond the per-bin bound (or with
    /// pooling disabled) are dropped.
    pub fn put_vec<T: StreamElement>(&mut self, v: Vec<T>) {
        let cap = v.capacity();
        if !self.enabled || cap == 0 {
            self.stats.dropped += 1;
            return;
        }
        // Largest power of two ≤ cap: every take of that class fits.
        let class = 1usize << (usize::BITS - 1 - cap.leading_zeros());
        let pool = self
            .pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(TypedPool::<T>::new()))
            .as_any_mut()
            .downcast_mut::<TypedPool<T>>()
            .expect("pool type mismatch");
        let bin = pool.bins.entry(class).or_default();
        if bin.len() >= MAX_BUFFERS_PER_CLASS {
            self.stats.dropped += 1;
            return;
        }
        let bytes = (cap * std::mem::size_of::<T>()) as u64;
        bin.push(v);
        self.stats.recycled += 1;
        self.pooled_bytes += bytes;
        self.touch_lru((TypeId::of::<T>(), class));
        self.enforce_cap();
    }

    /// A stream of `len` default-initialized elements backed by a pooled
    /// buffer (the arena counterpart of [`Stream::new`]).
    pub fn take_stream<T: StreamElement>(
        &mut self,
        name: impl Into<String>,
        len: usize,
        layout: Layout,
    ) -> Stream<T> {
        Stream::from_vec(name, self.take_vec(len), layout)
    }

    /// A stream of `len` elements with unspecified contents, backed by a
    /// pooled buffer (the zero-fill-elision counterpart of
    /// [`StreamArena::take_stream`]; see [`StreamArena::take_vec_uninit`]
    /// for the write-before-read contract the caller signs).
    pub fn take_stream_uninit<T: StreamElement>(
        &mut self,
        name: impl Into<String>,
        len: usize,
        layout: Layout,
    ) -> Stream<T> {
        Stream::from_vec(name, self.take_vec_uninit(len), layout)
    }

    /// A stream initialized from `data` backed by a pooled buffer (the
    /// arena counterpart of `Stream::from_vec(name, data.to_vec(), …)`).
    pub fn take_stream_from<T: StreamElement>(
        &mut self,
        name: impl Into<String>,
        data: &[T],
        layout: Layout,
    ) -> Stream<T> {
        Stream::from_vec(name, self.take_vec_from(data), layout)
    }

    /// Hand a stream's backing buffer back for reuse.
    pub fn recycle<T: StreamElement>(&mut self, stream: Stream<T>) {
        self.put_vec(stream.into_data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Node, Value};

    #[test]
    fn take_and_put_round_trip_reuses_the_buffer() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        let v = arena.take_vec::<Value>(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == Value::default()));
        let ptr = v.as_ptr();
        arena.put_vec(v);
        assert_eq!(arena.pooled_buffers(), 1);
        let again = arena.take_vec::<Value>(900); // same class (1024)
        assert_eq!(again.as_ptr(), ptr, "the pooled buffer must be reused");
        assert_eq!(again.len(), 900);
        assert!(again.iter().all(|&x| x == Value::default()));
        let s = arena.stats();
        assert_eq!((s.takes, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn classes_separate_types_and_sizes() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.put_vec(arena_vec::<u32>(64));
        arena.put_vec(arena_vec::<u32>(128));
        arena.put_vec(arena_vec::<Node>(64));
        assert_eq!(arena.class_count(), 3);
        // A u32 request of class 64 must not consume the Node buffer.
        let _ = arena.take_vec::<u32>(33);
        assert_eq!(arena.pooled_buffers(), 2);
    }

    fn arena_vec<T: StreamElement>(n: usize) -> Vec<T> {
        let mut v = Vec::with_capacity(n);
        v.resize(n, T::default());
        v
    }

    #[test]
    fn take_vec_from_copies_the_data() {
        let mut arena = StreamArena::new();
        let data: Vec<u32> = (0..100).collect();
        let v = arena.take_vec_from(&data);
        assert_eq!(v, data);
    }

    #[test]
    fn disabled_arena_drops_everything() {
        let mut arena = StreamArena::new();
        arena.set_enabled(false);
        arena.put_vec(arena_vec::<u32>(64));
        assert_eq!(arena.pooled_buffers(), 0);
        assert_eq!(arena.stats().dropped, 1);
        let v = arena.take_vec::<u32>(64);
        assert_eq!(v.len(), 64);
        assert_eq!(arena.stats().misses, 1);
    }

    #[test]
    fn bins_are_bounded() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        for _ in 0..2 * MAX_BUFFERS_PER_CLASS {
            arena.put_vec(arena_vec::<u32>(64));
        }
        assert_eq!(arena.pooled_buffers(), MAX_BUFFERS_PER_CLASS);
        assert_eq!(arena.stats().dropped as usize, MAX_BUFFERS_PER_CLASS);
    }

    #[test]
    fn uninit_take_below_the_watermark_keeps_stale_contents_and_elides() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_elision(true);
        let mut v = arena.take_vec::<u32>(1000);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as u32 + 1;
        }
        let ptr = v.as_ptr();
        arena.put_vec(v);
        let again = arena.take_vec_uninit::<u32>(900);
        assert_eq!(again.as_ptr(), ptr, "the pooled buffer must be reused");
        assert_eq!(again.len(), 900);
        // Unspecified contents = the previous run's data, untouched.
        assert!(again.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
        assert_eq!(arena.stats().elided_elements, 900);
    }

    #[test]
    fn uninit_take_above_the_watermark_fills_only_the_tail() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_elision(true);
        let mut v: Vec<u32> = Vec::with_capacity(1024);
        v.resize(500, 7);
        arena.put_vec(v);
        let taken = arena.take_vec_uninit::<u32>(800);
        assert_eq!(taken.len(), 800);
        assert!(taken[..500].iter().all(|&x| x == 7), "watermark preserved");
        assert!(taken[500..].iter().all(|&x| x == 0), "tail default-filled");
        assert_eq!(arena.stats().elided_elements, 500);
    }

    #[test]
    fn uninit_take_with_elision_off_matches_take_vec() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_elision(false);
        let mut v = arena.take_vec::<u32>(256);
        v.iter_mut().for_each(|x| *x = 9);
        arena.put_vec(v);
        let taken = arena.take_vec_uninit::<u32>(256);
        assert!(taken.iter().all(|&x| x == 0), "baseline mode must refill");
        assert_eq!(arena.stats().elided_elements, 0);
    }

    #[test]
    fn uninit_take_on_a_pool_miss_is_default_initialized() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_elision(true);
        let taken = arena.take_vec_uninit::<Value>(300);
        assert_eq!(taken.len(), 300);
        assert!(taken.iter().all(|&x| x == Value::default()));
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(arena.stats().elided_elements, 0);
    }

    #[test]
    fn uninit_stream_round_trip_reaches_full_elision_in_steady_state() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_elision(true);
        let s = arena.take_stream_uninit::<Value>("w", 512, Layout::ZOrder);
        assert_eq!(s.len(), 512);
        arena.recycle(s);
        let before = arena.stats().elided_elements;
        let s2 = arena.take_stream_uninit::<Value>("w", 512, Layout::ZOrder);
        assert_eq!(s2.len(), 512);
        assert_eq!(
            arena.stats().elided_elements - before,
            512,
            "a same-class re-take must skip the whole refill"
        );
    }

    #[test]
    fn byte_cap_evicts_the_coldest_class_first() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        // Two u32 classes: 64 (256 B per buffer) and 128 (512 B).
        arena.put_vec(arena_vec::<u32>(64));
        arena.put_vec(arena_vec::<u32>(128));
        assert_eq!(arena.pooled_bytes(), 256 + 512);
        // Touch class 64 so class 128 is the coldest.
        let v = arena.take_vec::<u32>(64);
        arena.put_vec(v);
        // A cap below the current footprint evicts class 128 only.
        arena.set_byte_cap(Some(300));
        assert_eq!(arena.pooled_bytes(), 256);
        assert_eq!(arena.stats().evicted_bytes, 512);
        assert_eq!(arena.class_count(), 1);
        let s = arena.stats();
        // The surviving class still serves hits.
        let _ = arena.take_vec::<u32>(64);
        assert_eq!(arena.stats().hits, s.hits + 1);
        // The evicted class misses (allocates) but works.
        let big = arena.take_vec::<u32>(128);
        assert_eq!(big.len(), 128);
        assert_eq!(arena.stats().misses, s.misses + 1);
    }

    #[test]
    fn byte_cap_bounds_a_mixed_size_soak() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_byte_cap(Some(4096));
        // A "soak" cycling through many capacity classes: without the cap
        // this pools 8 classes × 8 buffers each, far past 4096 bytes.
        for round in 0..20 {
            for log2 in 4..12 {
                let v = arena.take_vec::<u32>(1 << log2);
                arena.put_vec(v);
            }
            assert!(
                arena.pooled_bytes() <= 4096,
                "round {round}: {} bytes pooled",
                arena.pooled_bytes()
            );
        }
        assert!(arena.stats().evicted_bytes > 0);
    }

    #[test]
    fn an_oversized_hand_back_is_evicted_immediately() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.set_byte_cap(Some(100));
        arena.put_vec(arena_vec::<u32>(256)); // 1024 B > 100 B cap
        assert_eq!(arena.pooled_bytes(), 0);
        assert_eq!(arena.stats().evicted_bytes, 1024);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn uncapped_arena_never_evicts() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        assert_eq!(arena.byte_cap(), None);
        for log2 in 4..12 {
            arena.put_vec(arena_vec::<u32>(1 << log2));
        }
        assert_eq!(arena.stats().evicted_bytes, 0);
        assert_eq!(arena.class_count(), 8);
    }

    #[test]
    fn pooled_bytes_tracks_takes_and_hand_backs() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        arena.put_vec(arena_vec::<u32>(64));
        assert_eq!(arena.pooled_bytes(), 256);
        let v = arena.take_vec::<u32>(64);
        assert_eq!(arena.pooled_bytes(), 0);
        arena.put_vec(v);
        assert_eq!(arena.pooled_bytes(), 256);
        arena.set_enabled(false);
        assert_eq!(arena.pooled_bytes(), 0);
    }

    #[test]
    fn stream_round_trip_preserves_fresh_stream_semantics() {
        let mut arena = StreamArena::new();
        arena.set_enabled(true);
        let mut s = arena.take_stream::<Value>("scratch", 256, Layout::ZOrder);
        s.set(7, Value::new(3.0, 1));
        arena.recycle(s);
        let s2 = arena.take_stream::<Value>("scratch", 256, Layout::ZOrder);
        // Recycled storage must look freshly allocated.
        assert_eq!(s2.get(7), Value::default());
        assert_eq!(s2.len(), 256);
        assert_eq!(s2.name(), "scratch");
    }
}
