//! 1D ↔ 2D stream layouts (Section 6.2 of the paper).
//!
//! A GPU stream is physically a 2D texture, while the stream program
//! addresses it with 1D indices. The paper evaluates two mappings:
//!
//! * **row-wise** (Section 6.2.1): index `a` maps to
//!   `(a mod w, ⌊a / w⌋)` for a power-of-two width `w`;
//! * **Z-order / Morton** (Section 6.2.2): the bits of `a` are de-interleaved
//!   into the x and y coordinate, which maps every aligned power-of-two-sized
//!   1D block onto a square or 2:1 near-square 2D tile. This is the
//!   cache-oblivious layout that gives GPU-ABiSort variant (b) its speed.
//!
//! The module also provides [`Addr2D`], the packed 16+16-bit 2D index the
//! paper's kernels store instead of 1D indices ("we process and store all
//! addresses in the kernel programs directly in form of 2D indexes, where we
//! represent a 2D index by two 16 bit integer values packed into a 32 bit
//! field").

use serde::{Deserialize, Serialize};

/// A 2D element address packed into 32 bits (16-bit x, 16-bit y), as used by
/// the paper's GPU kernels.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr2D(pub u32);

impl Addr2D {
    /// Pack an (x, y) coordinate. Both coordinates must fit in 16 bits.
    #[inline]
    pub fn pack(x: u32, y: u32) -> Self {
        debug_assert!(x < 1 << 16 && y < 1 << 16, "coordinate exceeds 16 bits");
        Addr2D((y << 16) | (x & 0xFFFF))
    }

    /// The x coordinate.
    #[inline]
    pub fn x(self) -> u32 {
        self.0 & 0xFFFF
    }

    /// The y coordinate.
    #[inline]
    pub fn y(self) -> u32 {
        self.0 >> 16
    }

    /// Unpack into (x, y).
    #[inline]
    pub fn unpack(self) -> (u32, u32) {
        (self.x(), self.y())
    }
}

/// A mapping between 1D stream indices and 2D texture coordinates.
pub trait Mapping1Dto2D {
    /// Map a 1D element index to its 2D texture coordinate.
    fn to_2d(&self, index: usize) -> (u32, u32);

    /// Map a 2D texture coordinate back to the 1D element index.
    // The name pairs with `to_2d`; it is a coordinate conversion, not a
    // constructor, so the `from_*` self convention does not apply.
    #[allow(clippy::wrong_self_convention)]
    fn from_2d(&self, x: u32, y: u32) -> usize;

    /// Texture width in elements needed to hold `len` elements.
    fn width_for(&self, len: usize) -> u32;

    /// Texture height in elements needed to hold `len` elements.
    fn height_for(&self, len: usize) -> u32;
}

/// Row-wise mapping with a power-of-two row width (Section 6.2.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowMajor2D {
    width_log2: u32,
}

impl RowMajor2D {
    /// Create a row-wise mapping with the given power-of-two width.
    ///
    /// # Panics
    /// Panics if `width` is not a power of two or does not fit in 16 bits.
    pub fn new(width: u32) -> Self {
        assert!(width.is_power_of_two(), "row width must be a power of two");
        assert!(width <= 1 << 16, "row width must fit in 16 bits");
        RowMajor2D {
            width_log2: width.trailing_zeros(),
        }
    }

    /// The row width in elements.
    #[inline]
    pub fn width(&self) -> u32 {
        1 << self.width_log2
    }
}

impl Mapping1Dto2D for RowMajor2D {
    #[inline]
    fn to_2d(&self, index: usize) -> (u32, u32) {
        let w = self.width_log2;
        ((index as u32) & ((1 << w) - 1), (index >> w) as u32)
    }

    #[inline]
    fn from_2d(&self, x: u32, y: u32) -> usize {
        ((y as usize) << self.width_log2) | x as usize
    }

    fn width_for(&self, _len: usize) -> u32 {
        self.width()
    }

    fn height_for(&self, len: usize) -> u32 {
        let w = self.width() as usize;
        (len.div_ceil(w)).max(1) as u32
    }
}

/// Z-order (Morton) mapping (Section 6.2.2).
///
/// For a 1D index with bit representation `(a31, …, a1, a0)`, the x
/// coordinate takes the even bits `(a30, …, a2, a0)` and the y coordinate
/// the odd bits `(a31, …, a3, a1)`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZOrder2D;

impl ZOrder2D {
    /// Extract the even-position bits of `v` and compact them into the low
    /// half (inverse of bit interleaving).
    #[inline]
    fn compact_bits(mut v: u64) -> u32 {
        // Keep even bits, then successively squeeze out the gaps.
        v &= 0x5555_5555_5555_5555;
        v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
        v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
        v as u32
    }

    /// Spread the low 32 bits of `v` into the even bit positions of a u64.
    #[inline]
    fn spread_bits(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
}

impl Mapping1Dto2D for ZOrder2D {
    #[inline]
    fn to_2d(&self, index: usize) -> (u32, u32) {
        let i = index as u64;
        (Self::compact_bits(i), Self::compact_bits(i >> 1))
    }

    #[inline]
    fn from_2d(&self, x: u32, y: u32) -> usize {
        (Self::spread_bits(x) | (Self::spread_bits(y) << 1)) as usize
    }

    fn width_for(&self, len: usize) -> u32 {
        if len <= 1 {
            return 1;
        }
        let bits = usize::BITS - (len - 1).leading_zeros(); // ceil(log2(len))
        1 << bits.div_ceil(2)
    }

    fn height_for(&self, len: usize) -> u32 {
        if len <= 1 {
            return 1;
        }
        let bits = usize::BITS - (len - 1).leading_zeros();
        1 << (bits / 2)
    }
}

/// Runtime-selectable layout used by [`crate::Stream`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Pure 1D layout (no 2D packing); used for host-side reference streams.
    #[default]
    Linear,
    /// Row-wise 1D→2D mapping with the given power-of-two width
    /// (Section 6.2.1).
    RowMajor {
        /// Row width in elements; must be a power of two.
        width: u32,
    },
    /// Z-order / Morton 1D→2D mapping (Section 6.2.2).
    ZOrder,
}

impl Layout {
    /// Map a 1D element index to its 2D texture coordinate under this
    /// layout. `Linear` maps everything to row 0.
    #[inline]
    pub fn to_2d(&self, index: usize) -> (u32, u32) {
        match *self {
            Layout::Linear => (index as u32, 0),
            Layout::RowMajor { width } => RowMajor2D::new(width).to_2d(index),
            Layout::ZOrder => ZOrder2D.to_2d(index),
        }
    }

    /// Map a 2D texture coordinate back to the 1D element index.
    #[inline]
    pub fn from_2d(&self, x: u32, y: u32) -> usize {
        match *self {
            Layout::Linear => x as usize,
            Layout::RowMajor { width } => RowMajor2D::new(width).from_2d(x, y),
            Layout::ZOrder => ZOrder2D.from_2d(x, y),
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Linear => "linear",
            Layout::RowMajor { .. } => "row-wise",
            Layout::ZOrder => "z-order",
        }
    }
}

/// The 2D bounding box `(width, height)` of a contiguous 1D block
/// `[start, start + len)` under a layout.
///
/// For Z-order with aligned power-of-two blocks this is the square /
/// near-square tile of Section 6.2.2; for row-wise layouts it is the strip
/// or band of rows described in Section 6.2.1.
pub fn block_footprint(layout: &Layout, start: usize, len: usize) -> (u32, u32) {
    if len == 0 {
        return (0, 0);
    }
    let mut min_x = u32::MAX;
    let mut max_x = 0u32;
    let mut min_y = u32::MAX;
    let mut max_y = 0u32;
    // For the layouts we use (aligned power-of-two blocks) the bounding box
    // is determined by the corners, but compute it exactly for robustness on
    // small blocks; large blocks in benchmarks use the analytic fast path.
    if let Some(fp) = analytic_footprint(layout, start, len) {
        return fp;
    }
    for i in start..start + len {
        let (x, y) = layout.to_2d(i);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    (max_x - min_x + 1, max_y - min_y + 1)
}

/// Fast path of [`block_footprint`] for aligned power-of-two blocks, where
/// the shape is known analytically (the propositions of Section 6.2).
fn analytic_footprint(layout: &Layout, start: usize, len: usize) -> Option<(u32, u32)> {
    if !len.is_power_of_two() || !start.is_multiple_of(len) {
        return None;
    }
    match *layout {
        Layout::Linear => Some((len as u32, 1)),
        Layout::RowMajor { width } => {
            let w = width as usize;
            if len <= w {
                Some((len as u32, 1))
            } else {
                Some((width, (len / w) as u32))
            }
        }
        Layout::ZOrder => {
            let last = len - 1;
            let (lx, ly) = ZOrder2D.to_2d(last);
            Some((lx + 1, ly + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr2d_roundtrip() {
        for &(x, y) in &[(0u32, 0u32), (1, 2), (1023, 2047), (65535, 65535)] {
            let a = Addr2D::pack(x, y);
            assert_eq!(a.unpack(), (x, y));
            assert_eq!(a.x(), x);
            assert_eq!(a.y(), y);
        }
    }

    #[test]
    fn row_major_roundtrip() {
        let m = RowMajor2D::new(1024);
        for &i in &[0usize, 1, 1023, 1024, 1025, 4095, 1 << 20] {
            let (x, y) = m.to_2d(i);
            assert_eq!(m.from_2d(x, y), i);
            assert!(x < 1024);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn row_major_rejects_non_power_of_two_width() {
        let _ = RowMajor2D::new(1000);
    }

    #[test]
    fn z_order_roundtrip() {
        let m = ZOrder2D;
        for i in 0..4096usize {
            let (x, y) = m.to_2d(i);
            assert_eq!(m.from_2d(x, y), i, "index {i}");
        }
        // A few large ones.
        for &i in &[1usize << 20, (1 << 22) - 1, 123_456_789] {
            let (x, y) = m.to_2d(i);
            assert_eq!(m.from_2d(x, y), i);
        }
    }

    #[test]
    fn z_order_first_elements_follow_morton_curve() {
        // Morton order with x from even bits: 0→(0,0), 1→(1,0), 2→(0,1),
        // 3→(1,1), 4→(2,0), ...
        let m = ZOrder2D;
        assert_eq!(m.to_2d(0), (0, 0));
        assert_eq!(m.to_2d(1), (1, 0));
        assert_eq!(m.to_2d(2), (0, 1));
        assert_eq!(m.to_2d(3), (1, 1));
        assert_eq!(m.to_2d(4), (2, 0));
        assert_eq!(m.to_2d(5), (3, 0));
        assert_eq!(m.to_2d(10), (0, 3));
    }

    /// Paper, Section 6.2.2, proposition 1: the 1D index `2a` maps to the
    /// 2D index `(2·a_y, a_x)`.
    #[test]
    fn z_order_doubling_proposition() {
        let m = ZOrder2D;
        for a in 0..2048usize {
            let (ax, ay) = m.to_2d(a);
            assert_eq!(m.to_2d(2 * a), (2 * ay, ax));
        }
    }

    /// Paper, Section 6.2.2, proposition 2: for s a power of two and a < s,
    /// `s + a` maps to `(s_x + a_x, s_y + a_y)`.
    #[test]
    fn z_order_offset_proposition() {
        let m = ZOrder2D;
        for log_s in 0..12u32 {
            let s = 1usize << log_s;
            let (sx, sy) = m.to_2d(s);
            for a in (0..s).step_by((s / 64).max(1)) {
                let (ax, ay) = m.to_2d(a);
                assert_eq!(m.to_2d(s + a), (sx + ax, sy + ay), "s={s} a={a}");
            }
        }
    }

    /// Paper, Section 6.2.2, proposition 3: for l a power of two,
    /// `l − 1` maps to `(l'_x, l'_y)` with `(l'_x+1)(l'_y+1) = l` and the
    /// tile square or 2:1.
    #[test]
    fn z_order_block_shape_proposition() {
        let m = ZOrder2D;
        for log_l in 0..24u32 {
            let l = 1usize << log_l;
            let (lx, ly) = m.to_2d(l - 1);
            let w = (lx + 1) as usize;
            let h = (ly + 1) as usize;
            assert_eq!(w * h, l, "l={l}");
            assert!(w == h || w == 2 * h, "l={l} w={w} h={h}");
        }
    }

    #[test]
    fn z_order_aligned_blocks_are_contiguous_tiles() {
        // An aligned power-of-two block occupies exactly the rectangle
        // {s_x..s_x+w} x {s_y..s_y+h}: every element falls inside and the
        // rectangle has exactly `len` cells.
        let m = ZOrder2D;
        for log_l in 0..10u32 {
            let l = 1usize << log_l;
            for block in 0..4usize {
                let s = block * l;
                let (sx, sy) = m.to_2d(s);
                let (fw, fh) = block_footprint(&Layout::ZOrder, s, l);
                assert_eq!((fw as usize) * (fh as usize), l);
                for i in s..s + l {
                    let (x, y) = m.to_2d(i);
                    assert!(x >= sx && x < sx + fw && y >= sy && y < sy + fh);
                }
            }
        }
    }

    #[test]
    fn row_major_footprints_are_strips_or_bands() {
        let layout = Layout::RowMajor { width: 64 };
        // Block shorter than a row: 1-row strip.
        assert_eq!(block_footprint(&layout, 0, 16), (16, 1));
        assert_eq!(block_footprint(&layout, 16, 16), (16, 1));
        // Block spanning full rows: full-width band.
        assert_eq!(block_footprint(&layout, 0, 256), (64, 4));
        assert_eq!(block_footprint(&layout, 256, 256), (64, 4));
    }

    #[test]
    fn footprint_analytic_matches_exhaustive() {
        for layout in [
            Layout::RowMajor { width: 32 },
            Layout::ZOrder,
            Layout::Linear,
        ] {
            for log_l in 0..8u32 {
                let l = 1usize << log_l;
                for block in 0..3usize {
                    let s = block * l;
                    let analytic = analytic_footprint(&layout, s, l).unwrap();
                    // Recompute exhaustively.
                    let mut min_x = u32::MAX;
                    let mut max_x = 0;
                    let mut min_y = u32::MAX;
                    let mut max_y = 0;
                    for i in s..s + l {
                        let (x, y) = layout.to_2d(i);
                        min_x = min_x.min(x);
                        max_x = max_x.max(x);
                        min_y = min_y.min(y);
                        max_y = max_y.max(y);
                    }
                    assert_eq!(analytic, (max_x - min_x + 1, max_y - min_y + 1));
                }
            }
        }
    }

    #[test]
    fn layout_names() {
        assert_eq!(Layout::Linear.name(), "linear");
        assert_eq!(Layout::RowMajor { width: 64 }.name(), "row-wise");
        assert_eq!(Layout::ZOrder.name(), "z-order");
    }

    #[test]
    fn z_order_texture_dimensions() {
        let m = ZOrder2D;
        assert_eq!(m.width_for(1), 1);
        assert_eq!(m.width_for(2), 2);
        assert_eq!(m.height_for(2), 1);
        assert_eq!(m.width_for(4), 2);
        assert_eq!(m.height_for(4), 2);
        assert_eq!(m.width_for(1 << 20), 1 << 10);
        assert_eq!(m.height_for(1 << 20), 1 << 10);
        assert_eq!(m.width_for(1 << 21), 1 << 11);
        assert_eq!(m.height_for(1 << 21), 1 << 10);
    }

    #[test]
    fn row_major_texture_dimensions() {
        let m = RowMajor2D::new(2048);
        assert_eq!(m.width_for(100), 2048);
        assert_eq!(m.height_for(100), 1);
        assert_eq!(m.height_for(1 << 20), 512);
    }
}
