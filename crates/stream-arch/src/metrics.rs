//! Cost accounting for the simulated stream processor.
//!
//! Every stream operation executed by [`crate::StreamProcessor`] updates a
//! [`Counters`] record. The counters capture the quantities the paper's
//! analysis is stated in:
//!
//! * number of **stream operations** (the bound on parallel running time,
//!   Section 3.1) — both raw kernel *launches* and merged *steps* (a step
//!   may combine several launches into one multi-block-substream operation
//!   on hardware that supports it, Section 5.4);
//! * number of **kernel instances** (total work);
//! * streaming reads / writes, gathers, iterator-stream reads;
//! * **comparisons** performed by sorting kernels (for the `< 2 n log n`
//!   bound of Bilardi & Nicolau cited in Section 2.1);
//! * texture-cache behaviour and bytes moved (the row-wise vs Z-order
//!   difference of Section 6.2).
//!
//! [`crate::GpuProfile::simulate`] turns a `Counters` record into a
//! [`SimTime`] using a calibrated cost model.

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Event counters accumulated during simulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Kernel launches (one per `StreamProcessor::launch` call).
    pub launches: u64,
    /// Stream operations after merging the launches that share a step on
    /// hardware with multi-block substreams (Section 5.4). Algorithms call
    /// [`crate::StreamProcessor::record_step`] to delimit steps; if they
    /// never do, `steps == launches`.
    pub steps: u64,
    /// Total kernel instances executed.
    pub kernel_instances: u64,
    /// 32-bit words read linearly from input substreams (a 16-byte node
    /// element counts as four words).
    pub stream_reads: u64,
    /// 32-bit words written linearly to output substreams.
    pub stream_writes: u64,
    /// 32-bit words read by random-access (gather) reads.
    pub gathers: u64,
    /// Iterator-stream reads (no memory traffic).
    pub iter_reads: u64,
    /// Key comparisons performed by sorting kernels.
    pub comparisons: u64,
    /// Bytes written to stream memory.
    pub bytes_written: u64,
    /// Bytes read from stream memory, counted as cache-block fills.
    pub bytes_read: u64,
    /// Texture-cache statistics (all units merged).
    pub cache: CacheStats,
    /// Host↔device transfer bytes (charged by [`crate::TransferModel`]).
    pub transfer_bytes: u64,
}

impl Counters {
    /// A zeroed counter record.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of stream operations to charge launch overhead for:
    /// merged steps when the hardware supports multi-block substreams,
    /// raw launches otherwise.
    pub fn effective_ops(&self, multi_block: bool) -> u64 {
        if multi_block && self.steps > 0 {
            self.steps
        } else {
            self.launches
        }
    }

    /// Total memory traffic in bytes (reads as block fills + writes).
    pub fn traffic_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

impl AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.launches += rhs.launches;
        self.steps += rhs.steps;
        self.kernel_instances += rhs.kernel_instances;
        self.stream_reads += rhs.stream_reads;
        self.stream_writes += rhs.stream_writes;
        self.gathers += rhs.gathers;
        self.iter_reads += rhs.iter_reads;
        self.comparisons += rhs.comparisons;
        self.bytes_written += rhs.bytes_written;
        self.bytes_read += rhs.bytes_read;
        self.cache.merge(&rhs.cache);
        self.transfer_bytes += rhs.transfer_bytes;
    }
}

/// A simulated running time with its component breakdown.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimTime {
    /// Total simulated time in milliseconds.
    pub total_ms: f64,
    /// Component breakdown.
    pub breakdown: CostBreakdown,
}

/// Component breakdown of a [`SimTime`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Launch overhead of all stream operations (ms).
    pub op_overhead_ms: f64,
    /// Arithmetic / instruction time of all kernel instances, divided over
    /// the processor units (ms).
    pub compute_ms: f64,
    /// Memory-traffic time at the profile's bandwidth (ms).
    pub memory_ms: f64,
    /// Host↔device transfer time (ms), if any transfers were charged.
    pub transfer_ms: f64,
}

impl SimTime {
    /// Build a total from a breakdown. Compute and memory time overlap on a
    /// GPU (the fragment pipeline hides memory latency behind arithmetic as
    /// long as there are enough fragments in flight), so the body time is
    /// the maximum of the two; launch overhead and transfers serialize.
    pub fn from_breakdown(b: CostBreakdown) -> Self {
        SimTime {
            total_ms: b.op_overhead_ms + b.compute_ms.max(b.memory_ms) + b.transfer_ms,
            breakdown: b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        b.launches = 3;
        b.steps = 2;
        b.kernel_instances = 100;
        b.stream_reads = 200;
        b.comparisons = 50;
        b.cache.accesses = 10;
        a += &b;
        a += &b;
        assert_eq!(a.launches, 6);
        assert_eq!(a.steps, 4);
        assert_eq!(a.kernel_instances, 200);
        assert_eq!(a.stream_reads, 400);
        assert_eq!(a.comparisons, 100);
        assert_eq!(a.cache.accesses, 20);
    }

    #[test]
    fn effective_ops_prefers_steps_when_multi_block() {
        let c = Counters {
            launches: 10,
            steps: 4,
            ..Counters::default()
        };
        assert_eq!(c.effective_ops(true), 4);
        assert_eq!(c.effective_ops(false), 10);
        let c2 = Counters {
            launches: 10,
            steps: 0,
            ..Counters::default()
        };
        assert_eq!(c2.effective_ops(true), 10);
    }

    #[test]
    fn sim_time_overlaps_compute_and_memory() {
        let t = SimTime::from_breakdown(CostBreakdown {
            op_overhead_ms: 1.0,
            compute_ms: 5.0,
            memory_ms: 3.0,
            transfer_ms: 2.0,
        });
        assert!((t.total_ms - 8.0).abs() < 1e-12);
        let t2 = SimTime::from_breakdown(CostBreakdown {
            op_overhead_ms: 1.0,
            compute_ms: 3.0,
            memory_ms: 5.0,
            transfer_ms: 0.0,
        });
        assert!((t2.total_ms - 6.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_is_reads_plus_writes() {
        let c = Counters {
            bytes_read: 100,
            bytes_written: 50,
            ..Counters::default()
        };
        assert_eq!(c.traffic_bytes(), 150);
    }
}
