//! Error types for the stream-architecture simulator.
//!
//! The simulator enforces the constraints of the target hardware
//! (Section 3.2 and 6.1 of the paper) at run time; violating them is a
//! programming error in the stream program and is reported as a
//! [`StreamError`] rather than a panic so that the failure-injection tests
//! can observe them.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StreamError>;

/// Errors raised by the stream-architecture simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A substream range exceeded the bounds of its stream.
    SubStreamOutOfBounds {
        /// Length of the underlying stream.
        stream_len: usize,
        /// Offending range start (element index).
        start: usize,
        /// Offending range end (exclusive element index).
        end: usize,
    },
    /// Two blocks of a multi-block substream overlap, which the hardware
    /// does not allow for output substreams.
    OverlappingBlocks {
        /// First block (start, end).
        first: (usize, usize),
        /// Second block (start, end).
        second: (usize, usize),
    },
    /// The stream operation's output substream cannot hold the data the
    /// kernel instances push onto it.
    OutputOverflow {
        /// Capacity of the output substream in elements.
        capacity: usize,
        /// Number of elements the launch would write.
        required: usize,
    },
    /// A kernel instance tried to read past the end of an input substream.
    InputUnderflow {
        /// Capacity of the input substream in elements.
        capacity: usize,
        /// Number of elements the launch would read.
        required: usize,
    },
    /// A gather access used an index outside the gather stream.
    GatherOutOfBounds {
        /// Length of the gather stream.
        stream_len: usize,
        /// Offending index.
        index: usize,
    },
    /// The same stream was bound both as an input/gather stream and as an
    /// output stream of one stream operation. Current GPUs require input
    /// and output streams to be distinct (Section 6.1).
    InputOutputAliasing {
        /// Debug name of the offending stream.
        stream: String,
    },
    /// The requested stream exceeds the maximum 2D dimensions of the
    /// hardware profile (Section 3.2: usually 2048 or 4096 per dimension).
    StreamTooLarge {
        /// Number of elements requested.
        elements: usize,
        /// Maximum number of elements the profile supports.
        max_elements: usize,
    },
    /// An algorithm that requires a power-of-two length was given something
    /// else.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// A multi-block substream was used on a hardware profile that only
    /// supports single contiguous ranges.
    MultiBlockUnsupported,
    /// The per-instance output size exceeds the hardware's kernel output
    /// limit (Section 7.1: 16 x 32 bit on the paper's GPUs).
    KernelOutputTooLarge {
        /// Bytes the kernel wants to emit per instance.
        bytes: usize,
        /// Maximum bytes per instance allowed by the profile.
        max_bytes: usize,
    },
    /// The kernel performed a different number of stream accesses on
    /// different control paths, which a real kernel compiler would reject
    /// (see the note below Listing 4 in the paper).
    IrregularAccessPattern {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::SubStreamOutOfBounds {
                stream_len,
                start,
                end,
            } => write!(
                f,
                "substream [{start}, {end}) out of bounds for stream of length {stream_len}"
            ),
            StreamError::OverlappingBlocks { first, second } => write!(
                f,
                "substream blocks [{}, {}) and [{}, {}) overlap",
                first.0, first.1, second.0, second.1
            ),
            StreamError::OutputOverflow {
                capacity,
                required,
            } => write!(
                f,
                "stream operation writes {required} elements into an output substream of capacity {capacity}"
            ),
            StreamError::InputUnderflow {
                capacity,
                required,
            } => write!(
                f,
                "stream operation reads {required} elements from an input substream of capacity {capacity}"
            ),
            StreamError::GatherOutOfBounds { stream_len, index } => write!(
                f,
                "gather index {index} out of bounds for stream of length {stream_len}"
            ),
            StreamError::InputOutputAliasing { stream } => write!(
                f,
                "stream `{stream}` bound as both input and output of one stream operation; \
                 input and output streams must be distinct on this hardware"
            ),
            StreamError::StreamTooLarge {
                elements,
                max_elements,
            } => write!(
                f,
                "stream of {elements} elements exceeds the maximum stream size of {max_elements} elements"
            ),
            StreamError::NotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
            StreamError::MultiBlockUnsupported => write!(
                f,
                "multi-block substreams are not supported by this hardware profile"
            ),
            StreamError::KernelOutputTooLarge { bytes, max_bytes } => write!(
                f,
                "kernel output of {bytes} bytes per instance exceeds the hardware limit of {max_bytes} bytes"
            ),
            StreamError::IrregularAccessPattern { detail } => {
                write!(f, "irregular kernel access pattern: {detail}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_human_readably() {
        let e = StreamError::SubStreamOutOfBounds {
            stream_len: 8,
            start: 4,
            end: 12,
        };
        assert!(e.to_string().contains("out of bounds"));

        let e = StreamError::InputOutputAliasing {
            stream: "trees".into(),
        };
        assert!(e.to_string().contains("trees"));

        let e = StreamError::NotPowerOfTwo { len: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StreamError::MultiBlockUnsupported,
            StreamError::MultiBlockUnsupported
        );
        assert_ne!(
            StreamError::NotPowerOfTwo { len: 3 },
            StreamError::NotPowerOfTwo { len: 5 }
        );
    }
}
