//! Kernel-side stream access: the per-instance context and the typed views
//! a kernel uses to touch stream memory.
//!
//! The access types mirror the paper's pseudo code (Appendix A):
//!
//! | paper construct                    | this module            |
//! |------------------------------------|------------------------|
//! | `in stream<T>` + `read_from_stream`| [`ReadView`]           |
//! | `out stream<T>` + `push_onto_stream`| [`WriteView`]         |
//! | `gather stream<T>` + `s[i]`        | [`GatherView`]         |
//! | `iter_stream<index_t>`             | [`IterStream`]         |
//! | `instance_index`                   | [`KernelCtx::instance_index`] |
//!
//! Linear (`in`/`out`) access is positional: kernel instance `i` owns the
//! logical positions `i·r .. (i+1)·r` of the substream, where `r` is the
//! fixed per-instance element count declared when the view is created. The
//! kernel addresses them by *slot* (`0..r`), which is equivalent to the
//! paper's sequence of `read_from_stream` / `push_onto_stream` calls but
//! keeps the views free of per-instance mutable state so that instances can
//! run on any processor unit. Because positions are derived from the
//! instance index alone, distinct instances never write the same location —
//! that is what makes the parallel executor sound.
//!
//! Scatter (random-access writes) is simply not expressible: [`WriteView`]
//! has no indexed write method. This is the architectural restriction the
//! whole paper is designed around (Section 3.2).

use crate::cache::CacheSim;
use crate::error::{Result, StreamError};
use crate::layout::Layout;
use crate::metrics::Counters;
use crate::stream::{BlockSet, Stream};
use crate::value::StreamElement;
use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// Number of 32-bit words an element of `bytes` bytes occupies (the unit
/// the per-access cost counters are kept in; the paper's GPUs shade
/// fragments in 32-bit channels, so reading a 16-byte node costs four times
/// as much shader time as reading a 4-byte index).
#[inline]
fn words(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(4).max(1)
}

static ACCOUNTING_BATCHED_DEFAULT: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Set the [`AccountingMode`] newly created processors start in (default
/// [`AccountingMode::Batched`]).
///
/// This is a measurement knob for the wall-clock harness, mirroring
/// [`crate::arena::set_pooling_default`]: scenarios that construct their
/// processors internally (the sorting service, the sharded sorter) can be
/// timed under the reference per-access model without threading a
/// parameter through every layer. Results are byte-identical either way.
pub fn set_accounting_default(mode: AccountingMode) {
    ACCOUNTING_BATCHED_DEFAULT.store(
        mode == AccountingMode::Batched,
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The process-wide default accounting mode for new processors.
pub fn accounting_default() -> AccountingMode {
    if ACCOUNTING_BATCHED_DEFAULT.load(std::sync::atomic::Ordering::Relaxed) {
        AccountingMode::Batched
    } else {
        AccountingMode::PerAccess
    }
}

/// How a [`KernelCtx`] charges the per-access cost model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum AccountingMode {
    /// Block accumulation (the default): accesses are summed into plain
    /// local counters, and consecutive cached fetches that land in the same
    /// cache tile are charged as one batched probe
    /// ([`CacheSim::access_tile_run`]). The counters, cache statistics and
    /// simulated times are byte-identical to [`AccountingMode::PerAccess`];
    /// only the host wall-clock cost of the accounting changes.
    #[default]
    Batched,
    /// The original reference model: every access updates the shared
    /// counters and probes the cache individually. Kept for the wall-clock
    /// harness (E21 measures batched against it) and the identity tests.
    PerAccess,
}

/// A pending run of consecutive cached fetches that all landed in the same
/// cache tile of the same stream; flushed as one batched probe.
#[derive(Copy, Clone)]
struct TileRun {
    stream_id: u64,
    /// Tile identity under the stream's layout (see [`tile_key`]); only
    /// comparable for the same `stream_id`.
    key: u64,
    /// Global element index of the first access of the run (tile
    /// coordinates are recomputed from it once, at flush time).
    first_idx: usize,
    layout: Layout,
    /// Element size, for the miss fill charge.
    bytes: usize,
    /// Accesses in the run; 0 means "no pending run".
    count: u64,
}

const NO_RUN: TileRun = TileRun {
    stream_id: 0,
    key: 0,
    first_idx: 0,
    layout: Layout::Linear,
    bytes: 0,
    count: 0,
};

/// One entry of the context's probe memo: where tile `(stream_id, key)`
/// was last found in the unit's cache. A memo hit lets [`KernelCtx`]
/// service a whole run through [`CacheSim::try_fast_hit`] — no 1D→2D
/// conversion, no set hash, no way scan. Entries are only trusted after
/// the cache re-verifies the tag, so eviction can never be missed.
#[derive(Copy, Clone)]
struct ProbeMemo {
    stream_id: u64,
    key: u64,
    tag: u64,
    slot: u32,
}

const NO_MEMO: ProbeMemo = ProbeMemo {
    stream_id: u64::MAX,
    key: u64::MAX,
    tag: 0,
    slot: 0,
};

/// Probe-memo entries (a power of two; indexed by a multiplicative hash).
const PROBE_MEMO_ENTRIES: usize = 8;

#[inline]
fn memo_index(stream_id: u64, key: u64) -> usize {
    ((stream_id ^ key)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_shr(61)) as usize
        & (PROBE_MEMO_ENTRIES - 1)
}

/// Locally accumulated event counts, flushed into the shared
/// [`Counters`] once per chunk instead of once per access.
#[derive(Copy, Clone, Default)]
struct PendingCounters {
    stream_reads: u64,
    stream_writes: u64,
    gathers: u64,
    iter_reads: u64,
    comparisons: u64,
    bytes_written: u64,
    bytes_read: u64,
}

/// The identity of the cache tile that element `idx` of a stream with the
/// given layout falls into, as a single comparable key. `shift` is
/// `log₂ block_edge`. Two accesses of one stream share a cache tile iff
/// their keys are equal; the key avoids the full 1D→2D conversion on the
/// hot path (for Z-order, the tile is just the index shifted by
/// `2·shift` — no bit de-interleaving per access).
#[inline]
fn tile_key(layout: Layout, idx: usize, shift: u32) -> u64 {
    match layout {
        Layout::Linear => ((idx as u32) >> shift) as u64,
        Layout::RowMajor { width } => {
            let w = width.trailing_zeros();
            let x = (idx as u32) & (width - 1);
            let y = (idx >> w) as u32;
            (((y >> shift) as u64) << 32) | ((x >> shift) as u64)
        }
        // Consecutive Morton indices interleave x/y bits, so dropping the
        // low 2·shift bits yields exactly (x >> shift, y >> shift) still
        // interleaved — a unique tile id.
        Layout::ZOrder => (idx >> (2 * shift)) as u64,
    }
}

/// Per-instance execution context handed to the kernel closure.
///
/// It carries the instance index, the processor unit's cache, the local
/// event counters and the per-instance output budget (Section 7.1's
/// 16 × 32-bit limit).
///
/// Under [`AccountingMode::Batched`] the context does not touch the shared
/// [`Counters`] per access: events accumulate into plain local fields and
/// cached fetches coalesce into per-tile runs, both flushed by the executor
/// once per chunk (and at every early exit). The executor owns the flush
/// discipline; tests that build a context by hand must call the
/// crate-internal `KernelCtx::flush` before inspecting counters.
pub struct KernelCtx<'a> {
    pub(crate) instance: usize,
    pub(crate) unit: usize,
    pub(crate) counters: &'a mut Counters,
    pub(crate) cache: Option<&'a mut CacheSim>,
    pub(crate) bytes_pushed: usize,
    pub(crate) max_output_bytes: usize,
    pub(crate) error: Option<StreamError>,
    batched: bool,
    /// `log₂ block_edge` of the unit's cache (0 when there is no cache).
    edge_shift: u32,
    pending: PendingCounters,
    run: TileRun,
    probe_memo: [ProbeMemo; PROBE_MEMO_ENTRIES],
}

impl<'a> KernelCtx<'a> {
    /// Build a context for a chunk of instances (the executor resets the
    /// per-instance state via [`KernelCtx::begin_instance`]).
    pub(crate) fn new(
        unit: usize,
        counters: &'a mut Counters,
        cache: Option<&'a mut CacheSim>,
        max_output_bytes: usize,
        batched: bool,
    ) -> Self {
        let edge_shift = cache
            .as_deref()
            .map(|c| c.config().block_edge.trailing_zeros())
            .unwrap_or(0);
        KernelCtx {
            instance: 0,
            unit,
            counters,
            cache,
            bytes_pushed: 0,
            max_output_bytes,
            error: None,
            batched,
            edge_shift,
            pending: PendingCounters::default(),
            run: NO_RUN,
            probe_memo: [NO_MEMO; PROBE_MEMO_ENTRIES],
        }
    }

    /// Reset the per-instance state (output budget, error) for the next
    /// instance of the chunk. Pending batched charges survive — a tile run
    /// may span instances, since consecutive instances of a linear view
    /// read consecutive elements.
    #[inline]
    pub(crate) fn begin_instance(&mut self, instance: usize) {
        self.instance = instance;
        self.bytes_pushed = 0;
        self.error = None;
    }

    /// Flush all pending batched charges into the shared counters and the
    /// cache model. Idempotent; a no-op in per-access mode.
    pub(crate) fn flush(&mut self) {
        self.flush_run();
        let p = self.pending;
        self.counters.stream_reads += p.stream_reads;
        self.counters.stream_writes += p.stream_writes;
        self.counters.gathers += p.gathers;
        self.counters.iter_reads += p.iter_reads;
        self.counters.comparisons += p.comparisons;
        self.counters.bytes_written += p.bytes_written;
        self.counters.bytes_read += p.bytes_read;
        self.pending = PendingCounters::default();
    }

    /// Flush the pending cache-tile run as one batched probe.
    fn flush_run(&mut self) {
        if self.run.count == 0 {
            return;
        }
        let run = self.run;
        self.run = NO_RUN;
        let cache = self
            .cache
            .as_deref_mut()
            .expect("a tile run exists only with a cache model");
        // Probe memo: a kernel alternates between a handful of tiles, so
        // the tile usually sits exactly where its last probe left it; a
        // verified fast hit skips the 1D→2D conversion, the set hash and
        // the way scan while producing byte-identical cache state.
        let mi = memo_index(run.stream_id, run.key);
        let memo = self.probe_memo[mi];
        if memo.stream_id == run.stream_id
            && memo.key == run.key
            && cache.try_fast_hit(memo.tag, memo.slot, run.count)
        {
            return;
        }
        let (x, y) = run.layout.to_2d(run.first_idx);
        let (hit, tag, slot) = cache.access_tile_run_slot(
            run.stream_id,
            x >> self.edge_shift,
            y >> self.edge_shift,
            run.count,
        );
        self.probe_memo[mi] = ProbeMemo {
            stream_id: run.stream_id,
            key: run.key,
            tag,
            slot,
        };
        if !hit {
            // One fill per missed tile, charged at the accessed element's
            // size (see `charge_cached_fetch`).
            let edge = cache.config().block_edge as u64;
            self.pending.bytes_read += edge * edge * run.bytes as u64;
        }
    }
    /// The index of this kernel instance within the stream operation
    /// (the paper's `instance_index`).
    #[inline]
    pub fn instance_index(&self) -> usize {
        self.instance
    }

    /// The simulated processor unit executing this instance.
    #[inline]
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// Record `n` key comparisons (for the work-complexity experiments).
    #[inline]
    pub fn count_comparisons(&mut self, n: u64) {
        if self.batched {
            self.pending.comparisons += n;
        } else {
            self.counters.comparisons += n;
        }
    }

    /// True once any access of this instance failed; subsequent accesses
    /// return defaults so the kernel can finish without panicking.
    #[inline]
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    #[inline]
    pub(crate) fn record_error(&mut self, e: StreamError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    #[inline]
    pub(crate) fn charge_read(
        &mut self,
        stream_id: u64,
        layout: Layout,
        global_idx: usize,
        bytes: usize,
    ) {
        if self.batched {
            self.pending.stream_reads += words(bytes);
        } else {
            self.counters.stream_reads += words(bytes);
        }
        self.charge_cached_fetch(stream_id, layout, global_idx, bytes);
    }

    #[inline]
    fn charge_gather(&mut self, stream_id: u64, layout: Layout, global_idx: usize, bytes: usize) {
        if self.batched {
            self.pending.gathers += words(bytes);
        } else {
            self.counters.gathers += words(bytes);
        }
        self.charge_cached_fetch(stream_id, layout, global_idx, bytes);
    }

    #[inline]
    fn charge_cached_fetch(
        &mut self,
        stream_id: u64,
        layout: Layout,
        global_idx: usize,
        bytes: usize,
    ) {
        if self.batched {
            match self.cache {
                Some(_) => {
                    // Extend the pending same-tile run, or flush it and
                    // start a new one. Linear streaming reads walk tiles in
                    // order (a Z-order tile holds `edge²` consecutive
                    // elements), so most accesses take the extend arm and
                    // skip the cache probe entirely.
                    let key = tile_key(layout, global_idx, self.edge_shift);
                    self.extend_run(stream_id, key, global_idx, layout, bytes, 1);
                }
                // No cache model: charge the raw element fetch.
                None => self.pending.bytes_read += bytes as u64,
            }
            return;
        }
        match self.cache.as_deref_mut() {
            Some(cache) => {
                let (x, y) = layout.to_2d(global_idx);
                let hit = cache.access(stream_id, x, y);
                if !hit {
                    // A miss fills a block_edge × block_edge tile of *this
                    // stream's* elements; charge the fill at the accessed
                    // element's size so that 4-byte index streams are not
                    // billed for 16-byte node tiles.
                    let edge = cache.config().block_edge as u64;
                    self.counters.bytes_read += edge * edge * bytes as u64;
                }
            }
            None => {
                // No cache model: charge the raw element fetch.
                self.counters.bytes_read += bytes as u64;
            }
        }
    }

    #[inline]
    pub(crate) fn charge_write(&mut self, bytes: usize) {
        if self.batched {
            self.pending.stream_writes += words(bytes);
            self.pending.bytes_written += bytes as u64;
        } else {
            self.counters.stream_writes += words(bytes);
            self.counters.bytes_written += bytes as u64;
        }
        self.bytes_pushed += bytes;
    }

    #[inline]
    fn charge_iter(&mut self) {
        if self.batched {
            self.pending.iter_reads += 1;
        } else {
            self.counters.iter_reads += 1;
        }
    }

    /// Continue the pending tile run with `count` accesses of tile `key`,
    /// or flush it and start a new run.
    #[inline]
    fn extend_run(
        &mut self,
        stream_id: u64,
        key: u64,
        first_idx: usize,
        layout: Layout,
        bytes: usize,
        count: u64,
    ) {
        if self.run.count > 0
            && self.run.stream_id == stream_id
            && self.run.key == key
            && self.run.bytes == bytes
        {
            self.run.count += count;
        } else {
            self.flush_run();
            self.run = TileRun {
                stream_id,
                key,
                first_idx,
                layout,
                bytes,
                count,
            };
        }
    }

    /// Bulk charge of `count` linear reads of the consecutive elements
    /// `[start_idx, start_idx + count)` — the block-accumulation fast path
    /// behind the views' bulk accessors. Byte-identical to `count`
    /// individual [`KernelCtx::charge_read`] calls; only reachable in
    /// batched mode (per-access mode goes through the per-element loop).
    #[inline]
    fn charge_read_range(
        &mut self,
        stream_id: u64,
        layout: Layout,
        start_idx: usize,
        count: usize,
        bytes: usize,
    ) {
        debug_assert!(self.batched);
        self.pending.stream_reads += count as u64 * words(bytes);
        self.charge_cached_fetch_range(stream_id, layout, start_idx, count, bytes);
    }

    /// Bulk charge of `count` gathers of consecutive elements (a common
    /// kernel shape: a whole aligned group re-read by every instance that
    /// works on it).
    #[inline]
    fn charge_gather_range(
        &mut self,
        stream_id: u64,
        layout: Layout,
        start_idx: usize,
        count: usize,
        bytes: usize,
    ) {
        debug_assert!(self.batched);
        self.pending.gathers += count as u64 * words(bytes);
        self.charge_cached_fetch_range(stream_id, layout, start_idx, count, bytes);
    }

    /// Charge a whole copy-operation chunk: `count` linear reads of
    /// `[start_idx, start_idx + count)` plus `count` linear writes (the
    /// executor's vectorized copy launch).
    #[inline]
    pub(crate) fn charge_copy_block(
        &mut self,
        stream_id: u64,
        layout: Layout,
        start_idx: usize,
        count: usize,
        bytes: usize,
    ) {
        self.charge_read_range(stream_id, layout, start_idx, count, bytes);
        self.charge_write_range(count, bytes);
    }

    /// Bulk charge of `count` linear writes (writes bypass the texture
    /// cache, so this is pure arithmetic).
    #[inline]
    fn charge_write_range(&mut self, count: usize, bytes: usize) {
        debug_assert!(self.batched);
        self.pending.stream_writes += count as u64 * words(bytes);
        self.pending.bytes_written += (count * bytes) as u64;
        self.bytes_pushed += count * bytes;
    }

    /// Bulk charge of `count` iterator-stream reads.
    #[inline]
    fn charge_iter_range(&mut self, count: usize) {
        debug_assert!(self.batched);
        self.pending.iter_reads += count as u64;
    }

    /// Charge `count` consecutive cached fetches, advancing the tile run
    /// segment-by-segment (one arithmetic step per tile crossed) instead of
    /// element-by-element.
    fn charge_cached_fetch_range(
        &mut self,
        stream_id: u64,
        layout: Layout,
        start_idx: usize,
        count: usize,
        bytes: usize,
    ) {
        if self.cache.is_none() {
            self.pending.bytes_read += (count * bytes) as u64;
            return;
        }
        let shift = self.edge_shift;
        let mut idx = start_idx;
        let end = start_idx + count;
        while idx < end {
            // The tile identity comes from the one canonical formula
            // (`tile_key`, shared with the per-element path — runs from
            // both producers must merge); the per-layout arithmetic below
            // only finds the first index past the tile.
            let key = tile_key(layout, idx, shift);
            let seg_end = match layout {
                // Aligned 2^(2·shift) element blocks are exactly the cache
                // tiles of the Morton layout.
                Layout::ZOrder => (((idx >> (2 * shift)) + 1) << (2 * shift)).min(end),
                Layout::Linear => (((idx >> shift) + 1) << shift).min(end),
                Layout::RowMajor { width } => {
                    // The walk leaves the tile at the next x-tile boundary
                    // or at the end of the row, whichever comes first.
                    let x = (idx as u32) & (width - 1);
                    let next_x_tile = (((x >> shift) + 1) << shift).min(width);
                    (idx + (next_x_tile - x) as usize).min(end)
                }
            };
            let n = (seg_end - idx) as u64;
            self.extend_run(stream_id, key, idx, layout, bytes, n);
            idx = seg_end;
        }
    }
}

/// A linear (streaming-read) input view: the paper's `in stream<T>`.
///
/// The source is held as a raw pointer rather than a `&[T]`: a staged
/// stage-fused epoch binds the views of *every* node of the stage up
/// front, so a view may legitimately coexist with a [`WriteView`] of the
/// same stream belonging to a later sub-launch. The epoch's barriers order
/// every read strictly before/after any overlapping write, exactly as the
/// eager engine's launch boundaries did; a stored shared reference would
/// turn that well-ordered sharing into language-level UB.
pub struct ReadView<'a, T> {
    data: *const T,
    len: usize,
    stream_id: u64,
    layout: Layout,
    blocks: BlockSet,
    per_instance: usize,
    _marker: PhantomData<&'a [T]>,
}

// SAFETY: the view only reads plain-old-data elements through a pointer
// valid for 'a; cross-thread use is ordered by the executor (launch or
// stage-epoch barriers) exactly like `WriteView`.
unsafe impl<'a, T: StreamElement> Send for ReadView<'a, T> {}
unsafe impl<'a, T: StreamElement> Sync for ReadView<'a, T> {}

impl<'a, T: StreamElement> ReadView<'a, T> {
    /// Bind an input substream. Each kernel instance reads exactly
    /// `per_instance` elements from it.
    pub fn new(stream: &'a Stream<T>, blocks: BlockSet, per_instance: usize) -> Result<Self> {
        stream.check_blocks(&blocks)?;
        let slice = stream.as_slice();
        Ok(ReadView {
            data: slice.as_ptr(),
            len: slice.len(),
            // The cache model keys on the stable name-derived tag so that
            // identical runs charge identical cache behaviour.
            stream_id: stream.cache_tag(),
            layout: stream.layout(),
            blocks,
            per_instance,
            _marker: PhantomData,
        })
    }

    /// Convenience constructor for a single contiguous range.
    pub fn contiguous(
        stream: &'a Stream<T>,
        start: usize,
        len: usize,
        per_instance: usize,
    ) -> Result<Self> {
        Self::new(stream, BlockSet::contiguous(start, len), per_instance)
    }

    /// Total number of elements in the bound substream.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Elements read by each kernel instance.
    pub fn per_instance(&self) -> usize {
        self.per_instance
    }

    /// Read slot `slot` (0-based) of this instance's elements.
    #[inline]
    pub fn get(&self, ctx: &mut KernelCtx<'_>, slot: usize) -> T {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::InputUnderflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return T::default();
        }
        let global = self.blocks.locate(pos);
        ctx.charge_read(self.stream_id, self.layout, global, T::BYTES);
        debug_assert!(global < self.len);
        // SAFETY: `check_blocks` validated every block against the stream
        // length at view creation, so `global < self.len`; ordering against
        // concurrent writers is the executor's launch/barrier discipline
        // (see the type-level comment).
        unsafe { *self.data.add(global) }
    }

    /// Read the first two slots as a pair (`read_from_stream` twice).
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>) -> (T, T) {
        let mut buf = [T::default(); 2];
        self.read_into(ctx, &mut buf);
        (buf[0], buf[1])
    }

    /// Read slots `0..out.len()` of this instance's elements into `out` —
    /// semantically identical to calling [`ReadView::get`] per slot
    /// (including the error and partial-charge behaviour on underflow),
    /// but located, bounds-checked and cost-charged as one block in
    /// batched-accounting mode. This is the vectorized read path the
    /// GPU-ABiSort kernels use.
    #[inline]
    pub fn read_into(&self, ctx: &mut KernelCtx<'_>, out: &mut [T]) {
        debug_assert!(out.len() <= self.per_instance, "slot out of range");
        if ctx.batched {
            if let Some(start) = self.blocks.contiguous_start() {
                let pos0 = ctx.instance * self.per_instance;
                if pos0 + out.len() <= self.blocks.total() {
                    let g0 = start + pos0;
                    ctx.charge_read_range(self.stream_id, self.layout, g0, out.len(), T::BYTES);
                    debug_assert!(g0 + out.len() <= self.len);
                    // SAFETY: the contiguous block was validated against the
                    // stream length at view creation and `pos0 + out.len()`
                    // is within it; see the type-level comment for ordering.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            self.data.add(g0),
                            out.as_mut_ptr(),
                            out.len(),
                        );
                    }
                    return;
                }
            }
        }
        // Reference path: per-access mode, multi-block substreams, and
        // underflowing reads (which must error and charge element by
        // element exactly like the legacy engine).
        for (slot, v) in out.iter_mut().enumerate() {
            *v = self.get(ctx, slot);
        }
    }
}

/// A random-access (gather) input view: the paper's `gather stream<T>`.
///
/// Raw-pointer based for the same reason as [`ReadView`]: a stage-fused
/// epoch may hold this view alongside a [`WriteView`] of the same stream
/// owned by a different sub-launch, with the epoch barriers providing the
/// ordering the eager launch boundaries used to.
pub struct GatherView<'a, T> {
    data: *const T,
    len: usize,
    stream_id: u64,
    layout: Layout,
    _marker: PhantomData<&'a [T]>,
}

// SAFETY: see `ReadView` — read-only plain-old-data access through a
// pointer valid for 'a, ordered by the executor.
unsafe impl<'a, T: StreamElement> Send for GatherView<'a, T> {}
unsafe impl<'a, T: StreamElement> Sync for GatherView<'a, T> {}

impl<'a, T: StreamElement> GatherView<'a, T> {
    /// Bind a whole stream for gather access.
    pub fn new(stream: &'a Stream<T>) -> Self {
        let slice = stream.as_slice();
        GatherView {
            data: slice.as_ptr(),
            len: slice.len(),
            stream_id: stream.cache_tag(),
            layout: stream.layout(),
            _marker: PhantomData,
        }
    }

    /// Length of the gather stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the gather stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Random read of element `index` (the paper's `bitonicTrees[pidx]`).
    #[inline]
    pub fn gather(&self, ctx: &mut KernelCtx<'_>, index: usize) -> T {
        if index >= self.len {
            ctx.record_error(StreamError::GatherOutOfBounds {
                stream_len: self.len,
                index,
            });
            return T::default();
        }
        ctx.charge_gather(self.stream_id, self.layout, index, T::BYTES);
        // SAFETY: `index < self.len` was just checked; ordering against
        // concurrent writers is the executor's launch/barrier discipline.
        unsafe { *self.data.add(index) }
    }

    /// Gather the consecutive elements `[start, start + out.len())` into
    /// `out` — semantically identical to one [`GatherView::gather`] per
    /// element (including the error behaviour past the end), but charged
    /// as one block in batched-accounting mode.
    #[inline]
    pub fn gather_range(&self, ctx: &mut KernelCtx<'_>, start: usize, out: &mut [T]) {
        if ctx.batched && start + out.len() <= self.len {
            ctx.charge_gather_range(self.stream_id, self.layout, start, out.len(), T::BYTES);
            // SAFETY: the range was just bounds-checked; ordering as above.
            unsafe {
                std::ptr::copy_nonoverlapping(self.data.add(start), out.as_mut_ptr(), out.len());
            }
            return;
        }
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.gather(ctx, start + i);
        }
    }
}

/// A linear output view: the paper's `out stream<T>` written with
/// `push_onto_stream`.
///
/// Internally the destination slice is shared between processor units
/// through an [`UnsafeCell`]; soundness rests on the positional access rule
/// (instance `i` writes only logical positions `i·r .. (i+1)·r`, which are
/// disjoint across instances) enforced by the slot API.
pub struct WriteView<'a, T> {
    data: &'a UnsafeCell<[T]>,
    stream_id: u64,
    layout: Layout,
    blocks: BlockSet,
    per_instance: usize,
    _marker: PhantomData<&'a mut Stream<T>>,
}

// SAFETY: distinct kernel instances write disjoint positions (derived from
// the instance index), and the executor never runs the same instance on two
// units. Reads of the written data happen only after the launch returns.
unsafe impl<'a, T: StreamElement> Send for WriteView<'a, T> {}
unsafe impl<'a, T: StreamElement> Sync for WriteView<'a, T> {}

impl<'a, T: StreamElement> WriteView<'a, T> {
    /// Bind an output substream. Each kernel instance writes exactly
    /// `per_instance` elements.
    pub fn new(stream: &'a mut Stream<T>, blocks: BlockSet, per_instance: usize) -> Result<Self> {
        stream.check_blocks(&blocks)?;
        let stream_id = stream.id();
        let layout = stream.layout();
        let slice: &mut [T] = stream.as_mut_slice();
        // SAFETY: `&mut [T]` and `&UnsafeCell<[T]>` have the same layout;
        // the exclusive borrow of the stream is held by this view for 'a.
        let data: &'a UnsafeCell<[T]> = unsafe { &*(slice as *mut [T] as *const UnsafeCell<[T]>) };
        Ok(WriteView {
            data,
            stream_id,
            layout,
            blocks,
            per_instance,
            _marker: PhantomData,
        })
    }

    /// Convenience constructor for a single contiguous range.
    pub fn contiguous(
        stream: &'a mut Stream<T>,
        start: usize,
        len: usize,
        per_instance: usize,
    ) -> Result<Self> {
        Self::new(stream, BlockSet::contiguous(start, len), per_instance)
    }

    /// Total number of elements the bound substream can hold.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Elements written by each kernel instance.
    pub fn per_instance(&self) -> usize {
        self.per_instance
    }

    /// The global element index that slot `slot` of instance `instance`
    /// will be written to. This is what the paper's *iterator streams*
    /// expose to the previous phase so it can fix up child pointers; see
    /// [`IterStream::for_write_view`].
    pub fn destination_index(&self, instance: usize, slot: usize) -> usize {
        self.blocks.locate(instance * self.per_instance + slot)
    }

    /// The block set this view writes to.
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// Write `value` into slot `slot` of this instance's output positions
    /// (the paper's `push_onto_stream`).
    #[inline]
    pub fn set(&self, ctx: &mut KernelCtx<'_>, slot: usize, value: T) {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::OutputOverflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return;
        }
        let global = self.blocks.locate(pos);
        ctx.charge_write(T::BYTES);
        let _ = self.layout; // writes bypass the texture cache (ROP path)
                             // SAFETY: `global` is unique to (instance, slot); see the type-level
                             // safety comment.
        unsafe {
            let base = self.data.get() as *mut T;
            *base.add(global) = value;
        }
    }

    /// Write a pair into slots 0 and 1.
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>, first: T, second: T) {
        self.write_all(ctx, &[first, second]);
    }

    /// Write `values` into slots `0..values.len()` of this instance's
    /// output positions — semantically identical to calling
    /// [`WriteView::set`] per slot (including the error and partial-charge
    /// behaviour on overflow), but located, budget-charged and stored as
    /// one block in batched-accounting mode. This is the vectorized write
    /// path the GPU-ABiSort kernels use.
    #[inline]
    pub fn write_all(&self, ctx: &mut KernelCtx<'_>, values: &[T]) {
        debug_assert!(values.len() <= self.per_instance, "slot out of range");
        if ctx.batched {
            if let Some(start) = self.blocks.contiguous_start() {
                let pos0 = ctx.instance * self.per_instance;
                if pos0 + values.len() <= self.blocks.total() {
                    let g0 = start + pos0;
                    ctx.charge_write_range(values.len(), T::BYTES);
                    // SAFETY: `g0 .. g0 + values.len()` is unique to this
                    // instance (disjoint positional ranges) and lies within
                    // the stream (validated by `check_blocks` at view
                    // creation); see the type-level safety comment.
                    unsafe {
                        let base = (self.data.get() as *mut T).add(g0);
                        std::ptr::copy_nonoverlapping(values.as_ptr(), base, values.len());
                    }
                    return;
                }
            }
        }
        // Reference path: per-access mode, multi-block substreams, and
        // overflowing writes (which must error and charge element by
        // element exactly like the legacy engine).
        for (slot, v) in values.iter().enumerate() {
            self.set(ctx, slot, *v);
        }
    }

    /// The stream this view writes into (for aliasing validation).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }
}

/// An iterator stream: a read-only stream containing a linear ascending
/// sequence of indices, realised by the hardware's iterator unit without
/// memory lookups (paper, Section "Phase i > 0 kernel").
///
/// In this simulator an iterator stream yields, for each logical position,
/// the *global element index* of a target block set — exactly the
/// destination addresses the next phase's [`WriteView`] will write to.
pub struct IterStream {
    blocks: BlockSet,
    per_instance: usize,
}

impl IterStream {
    /// An iterator stream over an explicit block set.
    pub fn new(blocks: BlockSet, per_instance: usize) -> Self {
        IterStream {
            blocks,
            per_instance,
        }
    }

    /// An iterator stream over a contiguous index range
    /// (`iter_stream<index_t>(a .. b)` in the paper's pseudo code).
    pub fn range(start: usize, len: usize, per_instance: usize) -> Self {
        Self::new(BlockSet::contiguous(start, len), per_instance)
    }

    /// An iterator stream that yields the destination indices of an output
    /// view that will be used in a later phase, so the current phase can
    /// update child pointers to point at those future locations
    /// (Section 5.2).
    pub fn for_write_view<T: StreamElement>(view: &WriteView<'_, T>) -> Self {
        IterStream {
            blocks: view.blocks().clone(),
            per_instance: view.per_instance(),
        }
    }

    /// Number of indices available.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Read slot `slot` of this instance's indices.
    #[inline]
    pub fn get(&self, ctx: &mut KernelCtx<'_>, slot: usize) -> u32 {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::InputUnderflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return 0;
        }
        ctx.charge_iter();
        self.blocks.locate(pos) as u32
    }

    /// Read the first two slots as a pair.
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>) -> (u32, u32) {
        if ctx.batched {
            if let Some(start) = self.blocks.contiguous_start() {
                let pos0 = ctx.instance * self.per_instance;
                if pos0 + 2 <= self.blocks.total() {
                    ctx.charge_iter_range(2);
                    let g0 = (start + pos0) as u32;
                    return (g0, g0 + 1);
                }
            }
        }
        (self.get(ctx, 0), self.get(ctx, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn test_ctx<'a>(
        instance: usize,
        counters: &'a mut Counters,
        cache: Option<&'a mut CacheSim>,
    ) -> KernelCtx<'a> {
        let mut ctx = KernelCtx::new(0, counters, cache, usize::MAX, true);
        ctx.begin_instance(instance);
        ctx
    }

    #[test]
    fn read_view_positional_access() {
        let s = Stream::from_vec("s", (0u32..16).collect(), Layout::Linear);
        let view = ReadView::contiguous(&s, 4, 8, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(1, &mut c, None);
        assert_eq!(view.pair(&mut ctx), (6, 7));
        assert_eq!(view.capacity(), 8);
        assert_eq!(view.per_instance(), 2);
        ctx.flush();
        assert_eq!(c.stream_reads, 2);
        assert!(c.bytes_read > 0);
    }

    #[test]
    fn read_view_underflow_is_reported_not_panicking() {
        let s = Stream::from_vec("s", (0u32..4).collect(), Layout::Linear);
        let view = ReadView::contiguous(&s, 0, 4, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(2, &mut c, None); // instance 2 needs positions 4,5
        let _ = view.get(&mut ctx, 0);
        assert!(ctx.failed());
        assert!(matches!(
            ctx.error,
            Some(StreamError::InputUnderflow { .. })
        ));
    }

    #[test]
    fn gather_view_counts_gathers_and_bounds_checks() {
        let s = Stream::from_vec("s", (0u32..8).collect(), Layout::Linear);
        let view = GatherView::new(&s);
        let mut c = Counters::new();
        {
            let mut ctx = test_ctx(0, &mut c, None);
            assert_eq!(view.gather(&mut ctx, 5), 5);
            assert_eq!(view.len(), 8);
            assert!(!view.is_empty());
            let _ = view.gather(&mut ctx, 100);
            assert!(matches!(
                ctx.error,
                Some(StreamError::GatherOutOfBounds { .. })
            ));
            ctx.flush();
        }
        assert_eq!(c.gathers, 1);
    }

    #[test]
    fn write_view_writes_disjoint_positions() {
        let mut s: Stream<u32> = Stream::new("out", 8, Layout::Linear);
        {
            let view = WriteView::contiguous(&mut s, 0, 8, 2).unwrap();
            let mut c = Counters::new();
            for instance in 0..4 {
                let mut ctx = test_ctx(instance, &mut c, None);
                view.pair(&mut ctx, instance as u32 * 10, instance as u32 * 10 + 1);
                ctx.flush();
            }
            assert_eq!(c.stream_writes, 8);
            assert_eq!(c.bytes_written, 8 * 4);
        }
        assert_eq!(s.as_slice(), &[0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn write_view_multi_block_destinations() {
        let mut s: Stream<u32> = Stream::new("out", 12, Layout::Linear);
        let blocks = BlockSet::multi(vec![(8, 2), (0, 4)]).unwrap();
        {
            let view = WriteView::new(&mut s, blocks, 2).unwrap();
            assert_eq!(view.destination_index(0, 0), 8);
            assert_eq!(view.destination_index(0, 1), 9);
            assert_eq!(view.destination_index(1, 0), 0);
            assert_eq!(view.destination_index(2, 1), 3);
            let mut c = Counters::new();
            for instance in 0..3 {
                let mut ctx = test_ctx(instance, &mut c, None);
                view.pair(&mut ctx, 100 + instance as u32, 200 + instance as u32);
            }
        }
        assert_eq!(&s.as_slice()[8..10], &[100, 200]);
        assert_eq!(&s.as_slice()[0..4], &[101, 201, 102, 202]);
    }

    #[test]
    fn write_view_overflow_reported() {
        let mut s: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        let view = WriteView::contiguous(&mut s, 0, 4, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(2, &mut c, None);
        view.set(&mut ctx, 0, 1);
        assert!(matches!(
            ctx.error,
            Some(StreamError::OutputOverflow { .. })
        ));
    }

    #[test]
    fn iter_stream_yields_destination_indices() {
        let mut s: Stream<u32> = Stream::new("out", 16, Layout::Linear);
        let next_phase_out = WriteView::contiguous(&mut s, 8, 8, 2).unwrap();
        let iter = IterStream::for_write_view(&next_phase_out);
        let mut c = Counters::new();
        let mut ctx = test_ctx(1, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (10, 11));
        ctx.flush();
        assert_eq!(c.iter_reads, 2);
        // Iterator reads cost no memory traffic.
        assert_eq!(c.bytes_read, 0);
        assert_eq!(iter.capacity(), 8);
    }

    #[test]
    fn iter_stream_range_matches_paper_pseudocode() {
        // iter_stream(2*nextStart .. 2*(nextStart+len)-1) with per-instance 2
        let iter = IterStream::range(6, 8, 2);
        let mut c = Counters::new();
        let mut ctx = test_ctx(0, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (6, 7));
        let mut ctx = test_ctx(3, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (12, 13));
    }

    #[test]
    fn tile_key_matches_the_layout_tiling() {
        // Two indices share a tile key iff their 2D coordinates fall into
        // the same block_edge × block_edge cache tile — for every layout.
        for layout in [
            Layout::Linear,
            Layout::RowMajor { width: 32 },
            Layout::ZOrder,
        ] {
            for shift in [1u32, 2, 3] {
                for idx in 0..2048usize {
                    let (x, y) = layout.to_2d(idx);
                    let expected = (((y >> shift) as u64) << 32) | ((x >> shift) as u64);
                    let key = tile_key(layout, idx, shift);
                    for other in idx.saturating_sub(40)..idx {
                        let (ox, oy) = layout.to_2d(other);
                        let other_expected =
                            (((oy >> shift) as u64) << 32) | ((ox >> shift) as u64);
                        assert_eq!(
                            key == tile_key(layout, other, shift),
                            expected == other_expected,
                            "layout {layout:?} shift {shift} idx {idx} other {other}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_accounting_is_byte_identical_to_per_access() {
        // An interleaved read/gather/write/iter pattern over two streams
        // must produce identical counters and cache state under both
        // accounting modes once the batched context is flushed.
        let nodes = Stream::from_vec(
            "nodes",
            (0u64..512).map(|i| i as u32).collect(),
            Layout::ZOrder,
        );
        let idxs = Stream::from_vec("idxs", (0u32..512).rev().collect(), Layout::ZOrder);
        let run = |batched: bool| {
            let mut c = Counters::new();
            let mut cache = CacheSim::new(crate::cache::CacheConfig::geforce_like(4));
            let mut ctx = KernelCtx::new(0, &mut c, Some(&mut cache), usize::MAX, batched);
            let read = ReadView::contiguous(&nodes, 0, 512, 4).unwrap();
            let gather = GatherView::new(&idxs);
            let iter = IterStream::range(0, 512, 4);
            for instance in 0..128usize {
                ctx.begin_instance(instance);
                for slot in 0..4 {
                    let v = read.get(&mut ctx, slot) as usize;
                    let g = gather.gather(&mut ctx, (v * 7) % 512);
                    let _ = iter.get(&mut ctx, slot);
                    ctx.count_comparisons(u64::from(g % 3));
                }
            }
            ctx.flush();
            (c, *cache.stats())
        };
        let (c_batched, cache_batched) = run(true);
        let (c_per_access, cache_per_access) = run(false);
        assert_eq!(c_batched, c_per_access);
        assert_eq!(cache_batched, cache_per_access);
        assert!(c_batched.cache == Default::default(), "merged later");
        assert!(cache_batched.accesses > 0);
    }

    #[test]
    fn cached_reads_charge_block_fills() {
        let s = Stream::from_vec("s", (0u32..64).collect(), Layout::RowMajor { width: 8 });
        let view = ReadView::contiguous(&s, 0, 64, 64).unwrap();
        let mut c = Counters::new();
        let mut cache = CacheSim::new(crate::cache::CacheConfig {
            block_edge: 4,
            num_blocks: 64,
            ways: 4,
            element_bytes: 4,
        });
        let mut ctx = test_ctx(0, &mut c, Some(&mut cache));
        for slot in 0..64 {
            let _ = view.get(&mut ctx, slot);
        }
        ctx.flush();
        // 64 elements in an 8x8 texture with 4x4 cache tiles = 4 tiles.
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(c.bytes_read, 4 * 16 * 4);
    }
}
