//! Kernel-side stream access: the per-instance context and the typed views
//! a kernel uses to touch stream memory.
//!
//! The access types mirror the paper's pseudo code (Appendix A):
//!
//! | paper construct                    | this module            |
//! |------------------------------------|------------------------|
//! | `in stream<T>` + `read_from_stream`| [`ReadView`]           |
//! | `out stream<T>` + `push_onto_stream`| [`WriteView`]         |
//! | `gather stream<T>` + `s[i]`        | [`GatherView`]         |
//! | `iter_stream<index_t>`             | [`IterStream`]         |
//! | `instance_index`                   | [`KernelCtx::instance_index`] |
//!
//! Linear (`in`/`out`) access is positional: kernel instance `i` owns the
//! logical positions `i·r .. (i+1)·r` of the substream, where `r` is the
//! fixed per-instance element count declared when the view is created. The
//! kernel addresses them by *slot* (`0..r`), which is equivalent to the
//! paper's sequence of `read_from_stream` / `push_onto_stream` calls but
//! keeps the views free of per-instance mutable state so that instances can
//! run on any processor unit. Because positions are derived from the
//! instance index alone, distinct instances never write the same location —
//! that is what makes the parallel executor sound.
//!
//! Scatter (random-access writes) is simply not expressible: [`WriteView`]
//! has no indexed write method. This is the architectural restriction the
//! whole paper is designed around (Section 3.2).

use crate::cache::CacheSim;
use crate::error::{Result, StreamError};
use crate::layout::Layout;
use crate::metrics::Counters;
use crate::stream::{BlockSet, Stream};
use crate::value::StreamElement;
use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// Number of 32-bit words an element of `bytes` bytes occupies (the unit
/// the per-access cost counters are kept in; the paper's GPUs shade
/// fragments in 32-bit channels, so reading a 16-byte node costs four times
/// as much shader time as reading a 4-byte index).
#[inline]
fn words(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(4).max(1)
}

/// Per-instance execution context handed to the kernel closure.
///
/// It carries the instance index, the processor unit's cache, the local
/// event counters and the per-instance output budget (Section 7.1's
/// 16 × 32-bit limit).
pub struct KernelCtx<'a> {
    pub(crate) instance: usize,
    pub(crate) unit: usize,
    pub(crate) counters: &'a mut Counters,
    pub(crate) cache: Option<&'a mut CacheSim>,
    pub(crate) bytes_pushed: usize,
    pub(crate) max_output_bytes: usize,
    pub(crate) error: Option<StreamError>,
}

impl<'a> KernelCtx<'a> {
    /// The index of this kernel instance within the stream operation
    /// (the paper's `instance_index`).
    #[inline]
    pub fn instance_index(&self) -> usize {
        self.instance
    }

    /// The simulated processor unit executing this instance.
    #[inline]
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// Record `n` key comparisons (for the work-complexity experiments).
    #[inline]
    pub fn count_comparisons(&mut self, n: u64) {
        self.counters.comparisons += n;
    }

    /// True once any access of this instance failed; subsequent accesses
    /// return defaults so the kernel can finish without panicking.
    #[inline]
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    #[inline]
    pub(crate) fn record_error(&mut self, e: StreamError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    #[inline]
    fn charge_read(&mut self, stream_id: u64, layout: Layout, global_idx: usize, bytes: usize) {
        self.counters.stream_reads += words(bytes);
        self.charge_cached_fetch(stream_id, layout, global_idx, bytes);
    }

    #[inline]
    fn charge_gather(&mut self, stream_id: u64, layout: Layout, global_idx: usize, bytes: usize) {
        self.counters.gathers += words(bytes);
        self.charge_cached_fetch(stream_id, layout, global_idx, bytes);
    }

    #[inline]
    fn charge_cached_fetch(
        &mut self,
        stream_id: u64,
        layout: Layout,
        global_idx: usize,
        bytes: usize,
    ) {
        match self.cache.as_deref_mut() {
            Some(cache) => {
                let (x, y) = layout.to_2d(global_idx);
                let hit = cache.access(stream_id, x, y);
                if !hit {
                    // A miss fills a block_edge × block_edge tile of *this
                    // stream's* elements; charge the fill at the accessed
                    // element's size so that 4-byte index streams are not
                    // billed for 16-byte node tiles.
                    let edge = cache.config().block_edge as u64;
                    self.counters.bytes_read += edge * edge * bytes as u64;
                }
            }
            None => {
                // No cache model: charge the raw element fetch.
                self.counters.bytes_read += bytes as u64;
            }
        }
    }

    #[inline]
    fn charge_write(&mut self, bytes: usize) {
        self.counters.stream_writes += words(bytes);
        self.counters.bytes_written += bytes as u64;
        self.bytes_pushed += bytes;
    }

    #[inline]
    fn charge_iter(&mut self) {
        self.counters.iter_reads += 1;
    }
}

/// A linear (streaming-read) input view: the paper's `in stream<T>`.
pub struct ReadView<'a, T> {
    data: &'a [T],
    stream_id: u64,
    layout: Layout,
    blocks: BlockSet,
    per_instance: usize,
}

impl<'a, T: StreamElement> ReadView<'a, T> {
    /// Bind an input substream. Each kernel instance reads exactly
    /// `per_instance` elements from it.
    pub fn new(stream: &'a Stream<T>, blocks: BlockSet, per_instance: usize) -> Result<Self> {
        stream.check_blocks(&blocks)?;
        Ok(ReadView {
            data: stream.as_slice(),
            // The cache model keys on the stable name-derived tag so that
            // identical runs charge identical cache behaviour.
            stream_id: stream.cache_tag(),
            layout: stream.layout(),
            blocks,
            per_instance,
        })
    }

    /// Convenience constructor for a single contiguous range.
    pub fn contiguous(
        stream: &'a Stream<T>,
        start: usize,
        len: usize,
        per_instance: usize,
    ) -> Result<Self> {
        Self::new(stream, BlockSet::contiguous(start, len), per_instance)
    }

    /// Total number of elements in the bound substream.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Elements read by each kernel instance.
    pub fn per_instance(&self) -> usize {
        self.per_instance
    }

    /// Read slot `slot` (0-based) of this instance's elements.
    #[inline]
    pub fn get(&self, ctx: &mut KernelCtx<'_>, slot: usize) -> T {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::InputUnderflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return T::default();
        }
        let global = self.blocks.locate(pos);
        ctx.charge_read(self.stream_id, self.layout, global, T::BYTES);
        self.data[global]
    }

    /// Read the first two slots as a pair (`read_from_stream` twice).
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>) -> (T, T) {
        (self.get(ctx, 0), self.get(ctx, 1))
    }
}

/// A random-access (gather) input view: the paper's `gather stream<T>`.
pub struct GatherView<'a, T> {
    data: &'a [T],
    stream_id: u64,
    layout: Layout,
}

impl<'a, T: StreamElement> GatherView<'a, T> {
    /// Bind a whole stream for gather access.
    pub fn new(stream: &'a Stream<T>) -> Self {
        GatherView {
            data: stream.as_slice(),
            stream_id: stream.cache_tag(),
            layout: stream.layout(),
        }
    }

    /// Length of the gather stream.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the gather stream is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Random read of element `index` (the paper's `bitonicTrees[pidx]`).
    #[inline]
    pub fn gather(&self, ctx: &mut KernelCtx<'_>, index: usize) -> T {
        if index >= self.data.len() {
            ctx.record_error(StreamError::GatherOutOfBounds {
                stream_len: self.data.len(),
                index,
            });
            return T::default();
        }
        ctx.charge_gather(self.stream_id, self.layout, index, T::BYTES);
        self.data[index]
    }
}

/// A linear output view: the paper's `out stream<T>` written with
/// `push_onto_stream`.
///
/// Internally the destination slice is shared between processor units
/// through an [`UnsafeCell`]; soundness rests on the positional access rule
/// (instance `i` writes only logical positions `i·r .. (i+1)·r`, which are
/// disjoint across instances) enforced by the slot API.
pub struct WriteView<'a, T> {
    data: &'a UnsafeCell<[T]>,
    stream_id: u64,
    layout: Layout,
    blocks: BlockSet,
    per_instance: usize,
    _marker: PhantomData<&'a mut Stream<T>>,
}

// SAFETY: distinct kernel instances write disjoint positions (derived from
// the instance index), and the executor never runs the same instance on two
// units. Reads of the written data happen only after the launch returns.
unsafe impl<'a, T: StreamElement> Send for WriteView<'a, T> {}
unsafe impl<'a, T: StreamElement> Sync for WriteView<'a, T> {}

impl<'a, T: StreamElement> WriteView<'a, T> {
    /// Bind an output substream. Each kernel instance writes exactly
    /// `per_instance` elements.
    pub fn new(stream: &'a mut Stream<T>, blocks: BlockSet, per_instance: usize) -> Result<Self> {
        stream.check_blocks(&blocks)?;
        let stream_id = stream.id();
        let layout = stream.layout();
        let slice: &mut [T] = stream.as_mut_slice();
        // SAFETY: `&mut [T]` and `&UnsafeCell<[T]>` have the same layout;
        // the exclusive borrow of the stream is held by this view for 'a.
        let data: &'a UnsafeCell<[T]> = unsafe { &*(slice as *mut [T] as *const UnsafeCell<[T]>) };
        Ok(WriteView {
            data,
            stream_id,
            layout,
            blocks,
            per_instance,
            _marker: PhantomData,
        })
    }

    /// Convenience constructor for a single contiguous range.
    pub fn contiguous(
        stream: &'a mut Stream<T>,
        start: usize,
        len: usize,
        per_instance: usize,
    ) -> Result<Self> {
        Self::new(stream, BlockSet::contiguous(start, len), per_instance)
    }

    /// Total number of elements the bound substream can hold.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Elements written by each kernel instance.
    pub fn per_instance(&self) -> usize {
        self.per_instance
    }

    /// The global element index that slot `slot` of instance `instance`
    /// will be written to. This is what the paper's *iterator streams*
    /// expose to the previous phase so it can fix up child pointers; see
    /// [`IterStream::for_write_view`].
    pub fn destination_index(&self, instance: usize, slot: usize) -> usize {
        self.blocks.locate(instance * self.per_instance + slot)
    }

    /// The block set this view writes to.
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// Write `value` into slot `slot` of this instance's output positions
    /// (the paper's `push_onto_stream`).
    #[inline]
    pub fn set(&self, ctx: &mut KernelCtx<'_>, slot: usize, value: T) {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::OutputOverflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return;
        }
        let global = self.blocks.locate(pos);
        ctx.charge_write(T::BYTES);
        let _ = self.layout; // writes bypass the texture cache (ROP path)
                             // SAFETY: `global` is unique to (instance, slot); see the type-level
                             // safety comment.
        unsafe {
            let base = self.data.get() as *mut T;
            *base.add(global) = value;
        }
    }

    /// Write a pair into slots 0 and 1.
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>, first: T, second: T) {
        self.set(ctx, 0, first);
        self.set(ctx, 1, second);
    }

    /// The stream this view writes into (for aliasing validation).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }
}

/// An iterator stream: a read-only stream containing a linear ascending
/// sequence of indices, realised by the hardware's iterator unit without
/// memory lookups (paper, Section "Phase i > 0 kernel").
///
/// In this simulator an iterator stream yields, for each logical position,
/// the *global element index* of a target block set — exactly the
/// destination addresses the next phase's [`WriteView`] will write to.
pub struct IterStream {
    blocks: BlockSet,
    per_instance: usize,
}

impl IterStream {
    /// An iterator stream over an explicit block set.
    pub fn new(blocks: BlockSet, per_instance: usize) -> Self {
        IterStream {
            blocks,
            per_instance,
        }
    }

    /// An iterator stream over a contiguous index range
    /// (`iter_stream<index_t>(a .. b)` in the paper's pseudo code).
    pub fn range(start: usize, len: usize, per_instance: usize) -> Self {
        Self::new(BlockSet::contiguous(start, len), per_instance)
    }

    /// An iterator stream that yields the destination indices of an output
    /// view that will be used in a later phase, so the current phase can
    /// update child pointers to point at those future locations
    /// (Section 5.2).
    pub fn for_write_view<T: StreamElement>(view: &WriteView<'_, T>) -> Self {
        IterStream {
            blocks: view.blocks().clone(),
            per_instance: view.per_instance(),
        }
    }

    /// Number of indices available.
    pub fn capacity(&self) -> usize {
        self.blocks.total()
    }

    /// Read slot `slot` of this instance's indices.
    #[inline]
    pub fn get(&self, ctx: &mut KernelCtx<'_>, slot: usize) -> u32 {
        debug_assert!(slot < self.per_instance, "slot out of range");
        let pos = ctx.instance * self.per_instance + slot;
        if pos >= self.blocks.total() {
            ctx.record_error(StreamError::InputUnderflow {
                capacity: self.blocks.total(),
                required: pos + 1,
            });
            return 0;
        }
        ctx.charge_iter();
        self.blocks.locate(pos) as u32
    }

    /// Read the first two slots as a pair.
    #[inline]
    pub fn pair(&self, ctx: &mut KernelCtx<'_>) -> (u32, u32) {
        (self.get(ctx, 0), self.get(ctx, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn test_ctx<'a>(
        instance: usize,
        counters: &'a mut Counters,
        cache: Option<&'a mut CacheSim>,
    ) -> KernelCtx<'a> {
        KernelCtx {
            instance,
            unit: 0,
            counters,
            cache,
            bytes_pushed: 0,
            max_output_bytes: usize::MAX,
            error: None,
        }
    }

    #[test]
    fn read_view_positional_access() {
        let s = Stream::from_vec("s", (0u32..16).collect(), Layout::Linear);
        let view = ReadView::contiguous(&s, 4, 8, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(1, &mut c, None);
        assert_eq!(view.pair(&mut ctx), (6, 7));
        assert_eq!(view.capacity(), 8);
        assert_eq!(view.per_instance(), 2);
        assert_eq!(c.stream_reads, 2);
        assert!(c.bytes_read > 0);
    }

    #[test]
    fn read_view_underflow_is_reported_not_panicking() {
        let s = Stream::from_vec("s", (0u32..4).collect(), Layout::Linear);
        let view = ReadView::contiguous(&s, 0, 4, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(2, &mut c, None); // instance 2 needs positions 4,5
        let _ = view.get(&mut ctx, 0);
        assert!(ctx.failed());
        assert!(matches!(
            ctx.error,
            Some(StreamError::InputUnderflow { .. })
        ));
    }

    #[test]
    fn gather_view_counts_gathers_and_bounds_checks() {
        let s = Stream::from_vec("s", (0u32..8).collect(), Layout::Linear);
        let view = GatherView::new(&s);
        let mut c = Counters::new();
        {
            let mut ctx = test_ctx(0, &mut c, None);
            assert_eq!(view.gather(&mut ctx, 5), 5);
            assert_eq!(view.len(), 8);
            assert!(!view.is_empty());
            let _ = view.gather(&mut ctx, 100);
            assert!(matches!(
                ctx.error,
                Some(StreamError::GatherOutOfBounds { .. })
            ));
        }
        assert_eq!(c.gathers, 1);
    }

    #[test]
    fn write_view_writes_disjoint_positions() {
        let mut s: Stream<u32> = Stream::new("out", 8, Layout::Linear);
        {
            let view = WriteView::contiguous(&mut s, 0, 8, 2).unwrap();
            let mut c = Counters::new();
            for instance in 0..4 {
                let mut ctx = test_ctx(instance, &mut c, None);
                view.pair(&mut ctx, instance as u32 * 10, instance as u32 * 10 + 1);
            }
            assert_eq!(c.stream_writes, 8);
            assert_eq!(c.bytes_written, 8 * 4);
        }
        assert_eq!(s.as_slice(), &[0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn write_view_multi_block_destinations() {
        let mut s: Stream<u32> = Stream::new("out", 12, Layout::Linear);
        let blocks = BlockSet::multi(vec![(8, 2), (0, 4)]).unwrap();
        {
            let view = WriteView::new(&mut s, blocks, 2).unwrap();
            assert_eq!(view.destination_index(0, 0), 8);
            assert_eq!(view.destination_index(0, 1), 9);
            assert_eq!(view.destination_index(1, 0), 0);
            assert_eq!(view.destination_index(2, 1), 3);
            let mut c = Counters::new();
            for instance in 0..3 {
                let mut ctx = test_ctx(instance, &mut c, None);
                view.pair(&mut ctx, 100 + instance as u32, 200 + instance as u32);
            }
        }
        assert_eq!(&s.as_slice()[8..10], &[100, 200]);
        assert_eq!(&s.as_slice()[0..4], &[101, 201, 102, 202]);
    }

    #[test]
    fn write_view_overflow_reported() {
        let mut s: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        let view = WriteView::contiguous(&mut s, 0, 4, 2).unwrap();
        let mut c = Counters::new();
        let mut ctx = test_ctx(2, &mut c, None);
        view.set(&mut ctx, 0, 1);
        assert!(matches!(
            ctx.error,
            Some(StreamError::OutputOverflow { .. })
        ));
    }

    #[test]
    fn iter_stream_yields_destination_indices() {
        let mut s: Stream<u32> = Stream::new("out", 16, Layout::Linear);
        let next_phase_out = WriteView::contiguous(&mut s, 8, 8, 2).unwrap();
        let iter = IterStream::for_write_view(&next_phase_out);
        let mut c = Counters::new();
        let mut ctx = test_ctx(1, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (10, 11));
        assert_eq!(c.iter_reads, 2);
        // Iterator reads cost no memory traffic.
        assert_eq!(c.bytes_read, 0);
        assert_eq!(iter.capacity(), 8);
    }

    #[test]
    fn iter_stream_range_matches_paper_pseudocode() {
        // iter_stream(2*nextStart .. 2*(nextStart+len)-1) with per-instance 2
        let iter = IterStream::range(6, 8, 2);
        let mut c = Counters::new();
        let mut ctx = test_ctx(0, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (6, 7));
        let mut ctx = test_ctx(3, &mut c, None);
        assert_eq!(iter.pair(&mut ctx), (12, 13));
    }

    #[test]
    fn cached_reads_charge_block_fills() {
        let s = Stream::from_vec("s", (0u32..64).collect(), Layout::RowMajor { width: 8 });
        let view = ReadView::contiguous(&s, 0, 64, 64).unwrap();
        let mut c = Counters::new();
        let mut cache = CacheSim::new(crate::cache::CacheConfig {
            block_edge: 4,
            num_blocks: 64,
            ways: 4,
            element_bytes: 4,
        });
        let mut ctx = test_ctx(0, &mut c, Some(&mut cache));
        for slot in 0..64 {
            let _ = view.get(&mut ctx, slot);
        }
        // 64 elements in an 8x8 texture with 4x4 cache tiles = 4 tiles.
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(c.bytes_read, 4 * 16 * 4);
    }
}
