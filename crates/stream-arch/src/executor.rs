//! The stream processor: launches kernels over substreams and accounts for
//! their cost.
//!
//! A [`StreamProcessor`] owns
//!
//! * a [`GpuProfile`] (the hardware being simulated),
//! * one texture cache per processor unit,
//! * the accumulated [`Counters`],
//! * a [`StreamArena`] recycling stream backing buffers across runs,
//! * and (in [`ExecMode::Parallel`]) a persistent pool (`WorkerPool`) of
//!   unit threads.
//!
//! [`StreamProcessor::launch`] executes one *stream operation*: it runs the
//! kernel closure once per instance, either sequentially (deterministic
//! reference mode) or distributed over the profile's `p` units on real
//! threads. Either way the cost accounting is identical; parallel mode
//! exists to demonstrate real wall-clock scaling with `p` and to keep large
//! benchmark runs fast.
//!
//! Host execution of a parallel launch is a *pooled* dispatch: the unit
//! threads are spawned once, park on a condvar, and every launch publishes
//! the kernel closure and wakes only the units that have instances to run.
//! Each unit writes its event counters and first error into its own padded
//! result slot, so the common path has no mutex contention; the slots are
//! merged in unit order after the launch, which keeps the accounting
//! deterministic. The pre-pool engine — one `std::thread::scope` spawn per
//! unit per launch — is kept as [`ExecMode::SpawnParallel`] so the
//! wall-clock harness can measure the pooled engine against its baseline
//! and the test suite can assert byte-identical results.
//!
//! The processor enforces the hardware restrictions of Sections 3.2, 6.1
//! and 7.1: maximum stream size, per-instance output budget, and (via
//! [`StreamProcessor::check_distinct_io`]) distinctness of input and output
//! streams.

use crate::arena::StreamArena;
use crate::cache::CacheSim;
use crate::error::{Result, StreamError};
use crate::kernel::{AccountingMode, KernelCtx};
use crate::metrics::{Counters, SimTime};
use crate::profile::GpuProfile;
use crate::stream::Stream;
use crate::telemetry;
use crate::value::StreamElement;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};

/// How kernel instances of a launch are executed on the host.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// All instances run on the calling thread, in instance order. The
    /// default: fully deterministic, easiest to debug, and the cost model
    /// is unaffected by host parallelism.
    Sequential,
    /// Instances are distributed over the profile's `units` on the
    /// processor's persistent worker pool (contiguous chunks, one per
    /// unit). Used by the wall-clock scaling experiments.
    Parallel,
    /// Instances are distributed exactly like [`ExecMode::Parallel`], but
    /// every launch spawns fresh OS threads (`std::thread::scope`) instead
    /// of waking the pool. This is the legacy engine, kept as the
    /// wall-clock baseline: results, counters, cache statistics and
    /// simulated times are byte-identical to `Parallel`, only the host
    /// launch overhead differs.
    SpawnParallel,
}

/// How a driver that records launch plans executes them.
///
/// This is the engine-generation knob of the launch-graph planner (the
/// PR-4/PR-5 pattern): both modes produce byte-identical results,
/// counters, cache statistics and simulated times — only the host-side
/// scheduling work differs, which the E21 wall-clock harness measures.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// The pre-planner engine: the driver re-derives its launch schedule
    /// on every run and executes each launch as it is produced. Kept as
    /// the byte-identity baseline.
    Eager,
    /// The planner engine (the default): recorded plans are cached per
    /// sorter and, where the execution context allows it
    /// ([`ExecMode::Parallel`] with [`AccountingMode::Batched`]), each
    /// plan stage runs as **one** fused worker-pool epoch via
    /// [`StreamProcessor::launch_stage`].
    #[default]
    Staged,
}

static PLAN_STAGED_DEFAULT: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Set the [`PlanMode`] newly created processors start in (default
/// [`PlanMode::Staged`]).
///
/// A measurement knob for the wall-clock harness, mirroring
/// [`crate::kernel::set_accounting_default`]: scenarios that construct
/// their processors internally (the sorting service, the sharded sorter)
/// can be timed under the pre-planner reference engine without threading
/// a parameter through every layer. Results are byte-identical either
/// way.
pub fn set_plan_mode_default(mode: PlanMode) {
    PLAN_STAGED_DEFAULT.store(
        mode == PlanMode::Staged,
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The process-wide default plan mode for new processors.
pub fn plan_mode_default() -> PlanMode {
    if PLAN_STAGED_DEFAULT.load(std::sync::atomic::Ordering::Relaxed) {
        PlanMode::Staged
    } else {
        PlanMode::Eager
    }
}

/// Whether [`StreamProcessor::launch_stage`] may fuse a plan stage into
/// one worker-pool epoch.
///
/// Fusing replaces per-launch pool epochs (condvar wake + park per
/// sub-launch) with one epoch plus a barrier per sub-launch. That trade
/// only pays when the host can actually run the simulated units
/// concurrently: on a single-core host every barrier crossing costs a
/// full scheduling round through all participants, while the eager path
/// runs small launches inline for free — fusing there is strictly worse.
/// Results are byte-identical under every policy; only host wall-clock
/// time differs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum StageFusion {
    /// Fuse when profitable: only on hosts with more than one CPU
    /// (`std::thread::available_parallelism`). The default.
    #[default]
    Auto,
    /// Fuse whenever the execution context allows it, regardless of host
    /// parallelism. Used by tests to exercise the fused path on any host.
    Always,
    /// Never fuse; every stage executes as eager per-sub launches.
    Never,
}

/// Host CPU count, resolved once (the fusion heuristic's only input).
fn host_parallelism() -> usize {
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The simulated stream processor.
pub struct StreamProcessor {
    profile: GpuProfile,
    mode: ExecMode,
    accounting: AccountingMode,
    plan: PlanMode,
    fusion: StageFusion,
    caches: Vec<CacheSim>,
    counters: Counters,
    arena: StreamArena,
    pool: Option<WorkerPool>,
}

impl StreamProcessor {
    /// Create a processor for the given hardware profile (sequential host
    /// execution).
    pub fn new(profile: GpuProfile) -> Self {
        Self::with_mode(profile, ExecMode::Sequential)
    }

    /// Create a processor with an explicit host execution mode.
    ///
    /// The worker pool of [`ExecMode::Parallel`] is created lazily on the
    /// first parallel launch, so sequential processors never pay for idle
    /// threads.
    pub fn with_mode(profile: GpuProfile, mode: ExecMode) -> Self {
        let caches = (0..profile.units)
            .map(|_| CacheSim::new(profile.cache))
            .collect();
        StreamProcessor {
            profile,
            mode,
            accounting: crate::kernel::accounting_default(),
            plan: plan_mode_default(),
            fusion: StageFusion::default(),
            caches,
            counters: Counters::new(),
            arena: StreamArena::new(),
            pool: None,
        }
    }

    /// The hardware profile being simulated.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// The host execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Change the host execution mode.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// How kernel-side accesses are charged to the cost model (batched
    /// block accumulation by default; see [`AccountingMode`]).
    pub fn accounting_mode(&self) -> AccountingMode {
        self.accounting
    }

    /// Change the accounting mode. Counters, cache statistics and simulated
    /// times are byte-identical under both modes; only the host wall-clock
    /// cost of the accounting differs (E21 measures the difference).
    pub fn set_accounting_mode(&mut self, mode: AccountingMode) {
        self.accounting = mode;
    }

    /// How recorded launch plans execute on this processor (see
    /// [`PlanMode`]).
    pub fn plan_mode(&self) -> PlanMode {
        self.plan
    }

    /// Change the plan mode. Results, counters, cache statistics and
    /// simulated times are byte-identical under both modes; only the host
    /// scheduling cost differs.
    pub fn set_plan_mode(&mut self, mode: PlanMode) {
        self.plan = mode;
    }

    /// The stage-fusion policy of [`StreamProcessor::launch_stage`] (see
    /// [`StageFusion`]).
    pub fn stage_fusion(&self) -> StageFusion {
        self.fusion
    }

    /// Change the stage-fusion policy. Results are byte-identical under
    /// every policy; only the host scheduling cost differs.
    pub fn set_stage_fusion(&mut self, fusion: StageFusion) {
        self.fusion = fusion;
    }

    /// The processor's buffer arena. Drivers allocate their intermediate
    /// streams from it and recycle them at the end of a run, so a service
    /// executing thousands of sorts on one pooled processor stops churning
    /// the allocator.
    pub fn arena(&mut self) -> &mut StreamArena {
        &mut self.arena
    }

    /// Read-only view of the buffer arena (for inspecting reuse
    /// statistics).
    pub fn arena_ref(&self) -> &StreamArena {
        &self.arena
    }

    /// Accumulated counters, with the per-unit cache statistics merged in.
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        let mut cache = crate::cache::CacheStats::default();
        for unit_cache in &self.caches {
            cache.merge(unit_cache.stats());
        }
        c.cache = cache;
        c
    }

    /// Reset all counters and cache contents.
    pub fn reset(&mut self) {
        self.counters = Counters::new();
        for cache in &mut self.caches {
            cache.reset();
        }
    }

    /// Return the accumulated counters (cache statistics merged in) and
    /// reset the processor in one step.
    ///
    /// This is the reuse hook for processor pooling: a service that keeps
    /// one processor per device slot takes the counters after every batch,
    /// so the next batch starts from a clean record and no metrics bleed
    /// between tenants or batches.
    pub fn take_counters(&mut self) -> Counters {
        let c = self.counters();
        self.reset();
        c
    }

    /// Simulated running time of everything executed since the last reset.
    pub fn simulated_time(&self) -> SimTime {
        self.profile.simulate(&self.counters())
    }

    /// Record that the launches issued since the previous step boundary
    /// together form one stream operation on hardware with multi-block
    /// substreams (Section 5.4). Algorithms that never call this get
    /// `steps == 0`, and the cost model falls back to counting launches.
    pub fn record_step(&mut self) {
        self.counters.steps += 1;
    }

    /// Charge a host↔device round-trip transfer of `bytes` bytes in each
    /// direction (Section 8).
    pub fn charge_transfer(&mut self, round_trip_bytes: u64) {
        self.counters.transfer_bytes += round_trip_bytes;
    }

    /// Validate that a stream of `len` elements of type `T` fits within the
    /// profile's 2D stream size limit (Section 3.2).
    pub fn check_stream_size<T: StreamElement>(&self, len: usize) -> Result<()> {
        let max = self.profile.max_stream_elements();
        if len > max {
            return Err(StreamError::StreamTooLarge {
                elements: len,
                max_elements: max,
            });
        }
        Ok(())
    }

    /// Validate that the input/gather stream ids and output stream ids of a
    /// stream operation are distinct, as required by the paper's GPUs
    /// (Section 6.1). Profiles with `distinct_io == false` (the idealized
    /// machine) skip the check.
    pub fn check_distinct_io(&self, inputs: &[(u64, &str)], outputs: &[(u64, &str)]) -> Result<()> {
        if !self.profile.distinct_io {
            return Ok(());
        }
        for &(in_id, in_name) in inputs {
            for &(out_id, _) in outputs {
                if in_id == out_id {
                    return Err(StreamError::InputOutputAliasing {
                        stream: in_name.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validate that multi-block substreams are supported before using one
    /// (Section 5.4).
    pub fn check_multi_block(&self, num_blocks: usize) -> Result<()> {
        if num_blocks > 1 && !self.profile.multi_block_substreams {
            return Err(StreamError::MultiBlockUnsupported);
        }
        Ok(())
    }

    /// Execute a pure copy stream operation: `block.1 / per_instance`
    /// kernel instances each forward `per_instance` elements of
    /// `block` from `src` to the same positions of `dst`.
    ///
    /// This is the shape of GPU-ABiSort's copy-back (Section 6.1), which
    /// follows every phase and carries roughly half of all simulated
    /// traffic. Under [`AccountingMode::Batched`] the whole operation is
    /// vectorized: every unit's chunk is charged as one block (reads,
    /// writes, cache-tile runs — byte-identical to the per-element kernel,
    /// including the per-unit cache assignment of the parallel engines)
    /// and the data moves in one `memcpy`. Under
    /// [`AccountingMode::PerAccess`] it runs as a regular per-element
    /// kernel launch — the reference engine.
    pub fn launch_copy<T: StreamElement>(
        &mut self,
        name: &str,
        src: &Stream<T>,
        dst: &mut Stream<T>,
        block: (usize, usize),
        per_instance: usize,
    ) -> Result<()> {
        // Hard preconditions (a release-build caller passing an uneven
        // block would otherwise get a silently truncated copy).
        assert!(
            per_instance > 0 && block.1.is_multiple_of(per_instance),
            "copy block length must be a multiple of per_instance"
        );
        let blocks = crate::stream::BlockSet::contiguous(block.0, block.1);
        let instances = block.1 / per_instance;

        if self.accounting != AccountingMode::Batched {
            let read = crate::kernel::ReadView::new(src, blocks.clone(), per_instance)?;
            let write = crate::kernel::WriteView::new(dst, blocks, per_instance)?;
            return self.launch(name, instances, |ctx| {
                for slot in 0..per_instance {
                    let v = read.get(ctx, slot);
                    write.set(ctx, slot, v);
                }
            });
        }

        src.check_blocks(&blocks)?;
        dst.check_blocks(&blocks)?;
        self.counters.launches += 1;
        self.counters.kernel_instances += instances as u64;
        if instances == 0 {
            return Ok(());
        }
        // The per-instance output budget check of the per-element engine,
        // which aborts after the first instance exceeded it (with that
        // instance's charges recorded).
        let max_output_bytes = self.profile.max_kernel_output_bytes;
        let budget_error = per_instance * T::BYTES > max_output_bytes;

        // Per-unit chunking identical to `launch`, so the per-unit cache
        // statistics of the parallel engines are reproduced exactly. The
        // charging itself is pure arithmetic and runs inline.
        let (chunk, active) = match self.mode {
            ExecMode::Sequential => (instances, 1),
            ExecMode::Parallel | ExecMode::SpawnParallel => {
                chunk_plan(self.profile.units, instances)
            }
        };
        let (src_id, layout) = (src.cache_tag(), src.layout());
        for unit in 0..active {
            let i0 = unit * chunk;
            let i1 = ((unit + 1) * chunk).min(instances);
            let count = if budget_error {
                // Each unit aborts its chunk after its own first instance,
                // exactly like `run_chunk` under the per-element engine.
                per_instance
            } else {
                (i1 - i0) * per_instance
            };
            let mut ctx = KernelCtx::new(
                unit,
                &mut self.counters,
                Some(&mut self.caches[unit]),
                max_output_bytes,
                true,
            );
            ctx.charge_copy_block(src_id, layout, block.0 + i0 * per_instance, count, T::BYTES);
            ctx.flush();
        }
        if budget_error {
            // The per-element reference still *writes* each unit's first
            // instance before the budget check aborts it — reproduce those
            // partial writes so the stream contents stay byte-identical
            // across accounting modes even on this error path.
            for unit in 0..active {
                let i0 = unit * chunk;
                let e0 = block.0 + i0 * per_instance;
                dst.as_mut_slice()[e0..e0 + per_instance]
                    .copy_from_slice(&src.as_slice()[e0..e0 + per_instance]);
            }
            return Err(StreamError::KernelOutputTooLarge {
                bytes: per_instance * T::BYTES,
                max_bytes: max_output_bytes,
            });
        }
        let copied = instances * per_instance;
        dst.as_mut_slice()[block.0..block.0 + copied]
            .copy_from_slice(&src.as_slice()[block.0..block.0 + copied]);
        Ok(())
    }

    /// Execute one plan **stage** — a sequence of sub-launches the
    /// planner proved belong to the same stream-operation step — as a
    /// single worker-pool epoch where the execution context allows it.
    ///
    /// Fusion fires only under [`ExecMode::Parallel`] with
    /// [`AccountingMode::Batched`], more than one sub-launch, a combined
    /// instance count above the inline threshold, and telemetry disabled
    /// (per-launch spans are part of the eager engine's observable
    /// behaviour). In every other context each sub-launch executes
    /// exactly as the eager engine would have ([`StreamProcessor::launch`]
    /// / [`StreamProcessor::launch_copy`] semantics), stopping at the
    /// first error.
    ///
    /// The fused epoch preserves eager semantics by construction: each
    /// unit executes its chunk of sub-launch *k* only after every unit
    /// passed a barrier separating it from sub-launch *k−1*, so all
    /// cross-launch read/write orderings the eager launch boundaries
    /// enforced still hold; the per-(unit, sub) chunk assignment is the
    /// one `launch` would have used, so counters, per-unit cache
    /// statistics, error selection and output bytes are byte-identical —
    /// the pool is simply woken once per stage instead of once per
    /// launch.
    pub fn launch_stage(&mut self, subs: &[SubLaunch<'_>]) -> Result<()> {
        let total: usize = subs.iter().map(SubLaunch::instances).sum();
        let fuse = self.mode == ExecMode::Parallel
            && self.accounting == AccountingMode::Batched
            && subs.len() > 1
            && total > INLINE_INSTANCES
            && !telemetry::enabled()
            && match self.fusion {
                StageFusion::Always => true,
                StageFusion::Never => false,
                // Fusing trades per-launch epochs for per-sub barrier
                // crossings; with the pool's units multiplexed onto one
                // host CPU a barrier crossing costs a scheduling round,
                // so the eager fallback (inline small launches, one
                // epoch per large launch) wins there.
                StageFusion::Auto => host_parallelism() > 1,
            };
        if !fuse {
            for sub in subs {
                self.exec_sub(sub)?;
            }
            return Ok(());
        }

        let units = self.profile.units;
        let max_output_bytes = self.profile.max_kernel_output_bytes;
        // Per-sub chunk plans, identical to what `launch` would compute.
        let plans: Vec<(usize, usize, usize)> = subs
            .iter()
            .map(|s| {
                let n = s.instances();
                if n == 0 {
                    (0, 0, 0)
                } else {
                    let (chunk, active) = chunk_plan(units, n);
                    (chunk, active, n)
                }
            })
            .collect();
        let active_max = plans.iter().map(|p| p.1).max().unwrap_or(0);
        debug_assert!(active_max > 0, "total > 0 implies at least one unit");

        let pool = self.pool.get_or_insert_with(|| WorkerPool::new(units));
        let shared = Arc::clone(&pool.shared);
        // SAFETY (UnitPtr): each active unit touches only its own cache and
        // the pool blocks until every unit parked again — same argument as
        // the single-launch dispatch path.
        let caches = UnitPtr(self.caches.as_mut_ptr());
        // The first sub-launch index that errored (`usize::MAX` = none):
        // units still hit every barrier but skip the work of sub-launches
        // after it, exactly like the eager engine never issuing the
        // launches that follow a failed one.
        let abort_after = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let barrier = SpinBarrier::new(active_max);
        let task_shared = Arc::clone(&shared);
        let plans = &plans;
        let abort_ref = &abort_after;
        let barrier_ref = &barrier;
        let task = move |unit: usize| {
            // SAFETY: `unit < active_max` is guaranteed by the pool and
            // distinct units use distinct slots/caches.
            let slot = unsafe { task_shared.slot_mut(unit) };
            let cache = unsafe { caches.cache(unit) };
            slot.counters = Counters::new();
            slot.error = None;
            slot.error_sub = 0;
            // A kernel panic must not strand the other units at a barrier:
            // catch it, keep hitting barriers, re-raise after the last one
            // (the pool then propagates it to the dispatching thread).
            let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
            for (k, sub) in subs.iter().enumerate() {
                // Acquire pairs with the fetch_min below: after passing
                // barrier k-1 every unit observes an abort decided during
                // sub-launch k-1 or earlier.
                if panic_payload.is_none()
                    && abort_ref.load(std::sync::atomic::Ordering::Acquire) >= k
                {
                    let (chunk, active, n) = plans[k];
                    if unit < active {
                        let start = unit * chunk;
                        let end = ((unit + 1) * chunk).min(n);
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match sub {
                                SubLaunch::Kernel { kernel, .. } => run_chunk(
                                    unit,
                                    start,
                                    end,
                                    kernel,
                                    &mut slot.counters,
                                    cache,
                                    max_output_bytes,
                                    true,
                                ),
                                SubLaunch::Copy(c) => run_copy_chunk(
                                    unit,
                                    start,
                                    end,
                                    c,
                                    &mut slot.counters,
                                    cache,
                                    max_output_bytes,
                                ),
                            }));
                        match result {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                abort_ref.fetch_min(k, std::sync::atomic::Ordering::AcqRel);
                                if slot.error.is_none() {
                                    slot.error = Some(e);
                                    slot.error_sub = k;
                                }
                            }
                            Err(payload) => {
                                abort_ref.fetch_min(k, std::sync::atomic::Ordering::AcqRel);
                                panic_payload = Some(payload);
                            }
                        }
                    }
                }
                if k + 1 < subs.len() {
                    barrier_ref.wait();
                }
            }
            if let Some(payload) = panic_payload {
                std::panic::resume_unwind(payload);
            }
        };
        shared.dispatch(active_max, &task);

        // Count only the sub-launches that actually executed (everything up
        // to and including the erroring one), exactly like the eager engine
        // never reaching the launches after a failed `?`.
        let final_abort = abort_after.load(std::sync::atomic::Ordering::Relaxed);
        let executed = final_abort.saturating_add(1).min(subs.len());
        for sub in &subs[..executed] {
            self.counters.launches += 1;
            self.counters.kernel_instances += sub.instances() as u64;
        }
        // Merge the per-unit slots; on error return the eager engine's
        // pick: the first error in unit order of the first failed launch.
        // (Every recorded error belongs to that launch — a unit can only
        // reach a later sub-launch after the barrier that made the earlier
        // abort visible.)
        let mut first: Option<(usize, usize)> = None;
        for unit in 0..active_max {
            // SAFETY: all workers are parked again after dispatch().
            let slot = unsafe { shared.slot_mut(unit) };
            self.counters += &slot.counters;
            if slot.error.is_some() {
                let key = (slot.error_sub, unit);
                if first.is_none_or(|f| key < f) {
                    first = Some(key);
                }
            }
        }
        match first {
            Some((_, unit)) => {
                // SAFETY: as above; workers are parked.
                let slot = unsafe { shared.slot_mut(unit) };
                Err(slot.error.take().expect("error slot recorded above"))
            }
            None => Ok(()),
        }
    }

    /// Execute one sub-launch exactly as the eager engine would have.
    fn exec_sub(&mut self, sub: &SubLaunch<'_>) -> Result<()> {
        match sub {
            SubLaunch::Kernel {
                name,
                instances,
                kernel,
            } => self.launch(name, *instances, |ctx| kernel(ctx)),
            SubLaunch::Copy(c) => self.exec_copy(c),
        }
    }

    /// [`StreamProcessor::launch_copy`] over a bound [`StageCopy`]: the
    /// same per-accounting-mode behaviour (per-element reference launch
    /// under [`AccountingMode::PerAccess`], vectorized block charge and
    /// `memcpy` under [`AccountingMode::Batched`]), reproduced on the
    /// type-erased fields.
    fn exec_copy(&mut self, c: &StageCopy<'_>) -> Result<()> {
        let instances = c.instances();
        if self.accounting != AccountingMode::Batched {
            let per_instance = c.per_instance;
            return self.launch(c.name, instances, |ctx| {
                for slot in 0..per_instance {
                    let global = c.block.0 + ctx.instance_index() * per_instance + slot;
                    ctx.charge_read(c.src_tag, c.layout, global, c.elem_bytes);
                    // SAFETY: `global` lies inside the block validated
                    // against both streams at bind time, and distinct
                    // instances copy disjoint elements.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            c.src.add(global * c.stride),
                            c.dst.add(global * c.stride),
                            c.stride,
                        );
                    }
                    ctx.charge_write(c.elem_bytes);
                }
            });
        }

        self.counters.launches += 1;
        self.counters.kernel_instances += instances as u64;
        if instances == 0 {
            return Ok(());
        }
        let max_output_bytes = self.profile.max_kernel_output_bytes;
        let (chunk, active) = match self.mode {
            ExecMode::Sequential => (instances, 1),
            ExecMode::Parallel | ExecMode::SpawnParallel => {
                chunk_plan(self.profile.units, instances)
            }
        };
        let mut first_error = None;
        for unit in 0..active {
            let start = unit * chunk;
            let end = ((unit + 1) * chunk).min(instances);
            let r = run_copy_chunk(
                unit,
                start,
                end,
                c,
                &mut self.counters,
                &mut self.caches[unit],
                max_output_bytes,
            );
            if first_error.is_none() {
                first_error = r.err();
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Execute one stream operation: run `kernel` for `instances` kernel
    /// instances.
    ///
    /// The kernel closure receives a [`KernelCtx`] carrying the instance
    /// index; stream access goes through the views of [`crate::kernel`]
    /// captured in the closure's environment. Constraint violations
    /// detected during execution (gather out of bounds, output overflow,
    /// per-instance output budget exceeded, …) abort the launch and are
    /// returned as errors.
    ///
    /// Instance `i` of a parallel launch always runs on unit
    /// `i / ⌈instances / min(p, instances)⌉` — the deterministic
    /// unit→chunk assignment all three execution modes and both parallel
    /// engines share, which is what keeps cache statistics and error
    /// selection reproducible.
    pub fn launch<F>(&mut self, name: &str, instances: usize, kernel: F) -> Result<()>
    where
        F: Fn(&mut KernelCtx<'_>) + Sync,
    {
        // Telemetry gate: one relaxed atomic load when tracing is off.
        // Dispatched pooled launches are the worker pool's wake/park
        // epochs, so they get their own span category.
        if !telemetry::enabled() {
            return self.launch_untraced(name, instances, kernel);
        }
        let started = std::time::Instant::now();
        let cat = if self.mode == ExecMode::Parallel && instances > INLINE_INSTANCES {
            "epoch"
        } else {
            "launch"
        };
        let result = self.launch_untraced(name, instances, kernel);
        telemetry::record_host_span(cat, name, started, &[("instances", instances as f64)]);
        result
    }

    /// [`StreamProcessor::launch`] minus the telemetry hook: semantically
    /// identical (same counters, same results, same errors), never
    /// recorded in a trace even when the sink is enabled.
    ///
    /// This exists as the compiled-out control for the tracing-overhead
    /// acceptance test; production callers use [`StreamProcessor::launch`].
    pub fn launch_untraced<F>(&mut self, _name: &str, instances: usize, kernel: F) -> Result<()>
    where
        F: Fn(&mut KernelCtx<'_>) + Sync,
    {
        self.counters.launches += 1;
        self.counters.kernel_instances += instances as u64;
        if instances == 0 {
            return Ok(());
        }
        let max_output_bytes = self.profile.max_kernel_output_bytes;
        let batched = self.accounting == AccountingMode::Batched;

        match self.mode {
            ExecMode::Sequential => run_chunk(
                0,
                0,
                instances,
                &kernel,
                &mut self.counters,
                &mut self.caches[0],
                max_output_bytes,
                batched,
            ),
            ExecMode::Parallel => {
                let (chunk, active) = chunk_plan(self.profile.units, instances);
                if instances <= INLINE_INSTANCES {
                    // Small-launch fast path: waking workers costs more
                    // than the work itself, so run the units' chunks
                    // inline on the calling thread. The unit→chunk→cache
                    // assignment, counter-merge order and error selection
                    // are exactly those of the dispatched path, so results
                    // stay byte-identical — only the host time changes.
                    let mut first_error = None;
                    for unit in 0..active {
                        let start = unit * chunk;
                        let end = ((unit + 1) * chunk).min(instances);
                        let r = run_chunk(
                            unit,
                            start,
                            end,
                            &kernel,
                            &mut self.counters,
                            &mut self.caches[unit],
                            max_output_bytes,
                            batched,
                        );
                        if first_error.is_none() {
                            first_error = r.err();
                        }
                    }
                    return match first_error {
                        Some(e) => Err(e),
                        None => Ok(()),
                    };
                }
                let pool = self
                    .pool
                    .get_or_insert_with(|| WorkerPool::new(self.profile.units));
                let shared = Arc::clone(&pool.shared);
                // Raw per-unit cache pointers: each active unit touches only
                // its own cache, and the pool blocks until every unit is
                // done, so the mutable borrow of `self.caches` is never
                // aliased.
                let caches = UnitPtr(self.caches.as_mut_ptr());
                let kernel = &kernel;
                let task_shared = Arc::clone(&shared);
                let task = move |unit: usize| {
                    let start = unit * chunk;
                    let end = ((unit + 1) * chunk).min(instances);
                    // SAFETY: `unit < active` is guaranteed by the pool and
                    // distinct units use distinct slots/caches.
                    let slot = unsafe { task_shared.slot_mut(unit) };
                    let cache = unsafe { caches.cache(unit) };
                    slot.counters = Counters::new();
                    slot.error = run_chunk(
                        unit,
                        start,
                        end,
                        kernel,
                        &mut slot.counters,
                        cache,
                        max_output_bytes,
                        batched,
                    )
                    .err();
                };
                shared.dispatch(active, &task);
                // Merge the per-unit slots in unit order: deterministic, and
                // no lock was touched while the kernels ran.
                let mut first_error = None;
                for unit in 0..active {
                    // SAFETY: all workers are parked again after dispatch().
                    let slot = unsafe { shared.slot_mut(unit) };
                    self.counters += &slot.counters;
                    if first_error.is_none() {
                        first_error = slot.error.take();
                    }
                }
                match first_error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            ExecMode::SpawnParallel => {
                let (chunk, active) = chunk_plan(self.profile.units, instances);
                let mut slots: Vec<UnitSlot> = (0..active).map(|_| UnitSlot::default()).collect();
                std::thread::scope(|scope| {
                    for ((unit, slot), cache) in
                        slots.iter_mut().enumerate().zip(self.caches.iter_mut())
                    {
                        let start = unit * chunk;
                        let end = ((unit + 1) * chunk).min(instances);
                        let kernel = &kernel;
                        scope.spawn(move || {
                            slot.error = run_chunk(
                                unit,
                                start,
                                end,
                                kernel,
                                &mut slot.counters,
                                cache,
                                max_output_bytes,
                                batched,
                            )
                            .err();
                        });
                    }
                });
                let mut first_error = None;
                for slot in &mut slots {
                    self.counters += &slot.counters;
                    if first_error.is_none() {
                        first_error = slot.error.take();
                    }
                }
                match first_error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }
}

/// Launches at or below this many instances run inline on the calling
/// thread (still under the parallel unit→chunk assignment) instead of
/// being dispatched to the pool: a condvar round-trip costs far more than
/// simulating a handful of kernel instances. An adaptive bitonic sort
/// issues many such launches (stage-0 phases at high recursion levels
/// touch only a few tree roots), which is exactly the O(log² n)
/// cheap-launch regime the paper's machine model assumes is almost free.
const INLINE_INSTANCES: usize = 256;

/// The contiguous-chunk distribution shared by both parallel engines:
/// `⌈instances / min(units, instances)⌉` instances per unit, and the number
/// of units that actually receive work.
#[inline]
fn chunk_plan(units: usize, instances: usize) -> (usize, usize) {
    let units = units.max(1).min(instances);
    let chunk = instances.div_ceil(units);
    (chunk, instances.div_ceil(chunk))
}

/// Run instances `[start, end)` on one simulated unit.
///
/// One [`KernelCtx`] serves the whole chunk: per-instance state is reset by
/// `begin_instance`, while the batched accounting accumulates across
/// instances (a cache-tile run of a linear view usually continues straight
/// into the next instance's elements) and is flushed exactly once per exit
/// path, so an aborted chunk still charges everything the failing instance
/// touched — identical to the per-access model.
#[allow(clippy::too_many_arguments)]
fn run_chunk<F>(
    unit: usize,
    start: usize,
    end: usize,
    kernel: &F,
    local: &mut Counters,
    cache: &mut CacheSim,
    max_output_bytes: usize,
    batched: bool,
) -> Result<()>
where
    F: Fn(&mut KernelCtx<'_>) + Sync,
{
    let mut ctx = KernelCtx::new(unit, local, Some(cache), max_output_bytes, batched);
    for instance in start..end {
        ctx.begin_instance(instance);
        kernel(&mut ctx);
        if ctx.bytes_pushed > ctx.max_output_bytes {
            let bytes = ctx.bytes_pushed;
            ctx.flush();
            return Err(StreamError::KernelOutputTooLarge {
                bytes,
                max_bytes: max_output_bytes,
            });
        }
        if let Some(e) = ctx.error.take() {
            ctx.flush();
            return Err(e);
        }
    }
    ctx.flush();
    Ok(())
}

// --- Stage fusion ----------------------------------------------------------

/// One sub-launch of a fused plan stage: a kernel launch with its views
/// already bound, or a bound copy operation.
///
/// Built by a plan executor (one per plan node of the stage) and handed to
/// [`StreamProcessor::launch_stage`]; `'a` ties the bound views to the
/// streams they borrow.
pub enum SubLaunch<'a> {
    /// A regular kernel launch (the closure captures the bound views).
    Kernel {
        /// Launch name (telemetry / debugging).
        name: &'a str,
        /// Kernel instances to run.
        instances: usize,
        /// The kernel body, shared by all instances.
        kernel: Box<dyn Fn(&mut KernelCtx<'_>) + Sync + 'a>,
    },
    /// A copy operation ([`StreamProcessor::launch_copy`] shape).
    Copy(StageCopy<'a>),
}

impl SubLaunch<'_> {
    /// Kernel instances this sub-launch runs.
    pub fn instances(&self) -> usize {
        match self {
            SubLaunch::Kernel { instances, .. } => *instances,
            SubLaunch::Copy(c) => c.instances(),
        }
    }
}

/// A bound, type-erased copy operation: the [`StreamProcessor::launch_copy`]
/// parameters captured at plan-bind time so a fused stage can execute the
/// copy per unit-chunk between barriers.
///
/// Raw pointers rather than stream borrows for the same reason as
/// [`crate::kernel::ReadView`]: within one fused stage the copy's source is
/// typically the output of the preceding sub-launch, ordered by the stage
/// barrier exactly as the eager launch boundary ordered it.
pub struct StageCopy<'a> {
    name: &'a str,
    src_tag: u64,
    layout: crate::layout::Layout,
    block: (usize, usize),
    per_instance: usize,
    /// Simulated element size (`T::BYTES`), for the cost model.
    elem_bytes: usize,
    /// Host element size (`size_of::<T>()`), for the data movement.
    stride: usize,
    src: *const u8,
    dst: *mut u8,
    _marker: PhantomData<&'a ()>,
}

// SAFETY: distinct units copy disjoint element chunks, ordering against
// other sub-launches is the stage-barrier discipline, and the pointers are
// valid for 'a (bound from live stream borrows).
unsafe impl Send for StageCopy<'_> {}
unsafe impl Sync for StageCopy<'_> {}

impl<'a> StageCopy<'a> {
    /// Bind a copy of `block` from `src` to the same positions of `dst`,
    /// `per_instance` elements per kernel instance. Validates the block
    /// against both streams up front (the checks `launch_copy` performs
    /// before issuing work).
    pub fn new<T: StreamElement>(
        name: &'a str,
        src: &'a Stream<T>,
        dst: &'a mut Stream<T>,
        block: (usize, usize),
        per_instance: usize,
    ) -> Result<Self> {
        assert!(
            per_instance > 0 && block.1.is_multiple_of(per_instance),
            "copy block length must be a multiple of per_instance"
        );
        let blocks = crate::stream::BlockSet::contiguous(block.0, block.1);
        src.check_blocks(&blocks)?;
        dst.check_blocks(&blocks)?;
        Ok(StageCopy {
            name,
            src_tag: src.cache_tag(),
            layout: src.layout(),
            block,
            per_instance,
            elem_bytes: T::BYTES,
            stride: std::mem::size_of::<T>(),
            src: src.as_slice().as_ptr().cast(),
            dst: dst.as_mut_slice().as_mut_ptr().cast(),
            _marker: PhantomData,
        })
    }

    /// Kernel instances this copy runs as.
    pub fn instances(&self) -> usize {
        self.block.1 / self.per_instance
    }
}

/// Charge and execute instances `[start, end)` of a bound copy on one
/// simulated unit — the per-unit body shared by the eager batched copy
/// ([`StreamProcessor::launch_copy`] semantics) and the fused stage path.
///
/// Reproduces the per-element engine's budget-error behaviour exactly:
/// a per-instance byte count over the output budget charges and writes
/// only the unit's first instance, then errors.
fn run_copy_chunk(
    unit: usize,
    start: usize,
    end: usize,
    c: &StageCopy<'_>,
    local: &mut Counters,
    cache: &mut CacheSim,
    max_output_bytes: usize,
) -> Result<()> {
    let budget_error = c.per_instance * c.elem_bytes > max_output_bytes;
    let count = if budget_error {
        c.per_instance
    } else {
        (end - start) * c.per_instance
    };
    let e0 = c.block.0 + start * c.per_instance;
    let mut ctx = KernelCtx::new(unit, local, Some(cache), max_output_bytes, true);
    ctx.charge_copy_block(c.src_tag, c.layout, e0, count, c.elem_bytes);
    ctx.flush();
    // SAFETY: `[e0, e0 + count)` lies inside the block validated against
    // both streams at bind time; distinct units copy disjoint chunks, and
    // ordering against other sub-launches is the stage-barrier discipline.
    unsafe {
        std::ptr::copy_nonoverlapping(
            c.src.add(e0 * c.stride),
            c.dst.add(e0 * c.stride),
            count * c.stride,
        );
    }
    if budget_error {
        return Err(StreamError::KernelOutputTooLarge {
            bytes: c.per_instance * c.elem_bytes,
            max_bytes: max_output_bytes,
        });
    }
    Ok(())
}

/// A reusable sense-reversing barrier for the fused stage epochs.
///
/// Within one epoch every active unit is already running (no parked
/// threads), so a short spin beats a mutex/condvar round-trip per
/// sub-launch when the host can actually run the units concurrently.
/// When it cannot — more simulated units than host cores, the common
/// case on small CI runners — spinning is pathological: finished units
/// burn scheduler quanta that the unit still working needs. So the wait
/// is hybrid: a bounded spin, a few yields, then a real condvar park.
/// The last arrival flips the generation under the lock, so a waiter
/// that re-checks the generation while holding the lock cannot miss the
/// wake.
struct SpinBarrier {
    count: usize,
    arrived: std::sync::atomic::AtomicUsize,
    generation: std::sync::atomic::AtomicUsize,
    lock: Mutex<()>,
    wake: Condvar,
}

impl SpinBarrier {
    /// Spin-loop iterations before the first yield.
    const SPINS: u32 = 128;
    /// Yields after the spin phase before parking on the condvar.
    const YIELDS: u32 = 16;

    fn new(count: usize) -> Self {
        SpinBarrier {
            count,
            arrived: std::sync::atomic::AtomicUsize::new(0),
            generation: std::sync::atomic::AtomicUsize::new(0),
            lock: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Block until all `count` participants arrived. The last arrival
    /// resets the barrier and releases the waiters (Release), which pairs
    /// with the waiters' Acquire loads — everything written before a
    /// participant's `wait` happens-before everything after any
    /// participant's return.
    fn wait(&self) {
        use std::sync::atomic::Ordering;
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.count {
            self.arrived.store(0, Ordering::Relaxed);
            // Flip under the lock: a parked waiter holds the lock while
            // re-checking the generation, so it either sees the new value
            // or is guaranteed to receive this notification.
            let guard = self.lock.lock().expect("barrier lock poisoned");
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            drop(guard);
            self.wake.notify_all();
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins < Self::SPINS {
                    std::hint::spin_loop();
                } else if spins < Self::SPINS + Self::YIELDS {
                    std::thread::yield_now();
                } else {
                    let mut guard = self.lock.lock().expect("barrier lock poisoned");
                    while self.generation.load(Ordering::Acquire) == generation {
                        guard = self.wake.wait(guard).expect("barrier lock poisoned");
                    }
                    return;
                }
            }
        }
    }
}

// --- The persistent worker pool --------------------------------------------

/// A `*mut CacheSim` that may cross the dispatch boundary. Soundness is
/// argued at the capture site: units index disjoint elements, and the
/// dispatching thread blocks until all units are parked again.
struct UnitPtr(*mut CacheSim);
unsafe impl Send for UnitPtr {}
unsafe impl Sync for UnitPtr {}

impl UnitPtr {
    /// The cache of `unit`.
    ///
    /// # Safety
    /// The caller must guarantee `unit` is in bounds and not aliased (each
    /// active unit uses a distinct index, and the dispatcher blocks until
    /// all units finished).
    #[allow(clippy::mut_from_ref)]
    unsafe fn cache(&self, unit: usize) -> &mut CacheSim {
        &mut *self.0.add(unit)
    }
}

/// Per-unit launch result. Padded to its own cache lines so units don't
/// false-share while streaming counter updates.
#[repr(align(128))]
#[derive(Default)]
struct UnitSlot {
    counters: Counters,
    error: Option<StreamError>,
    /// Index of the sub-launch `error` belongs to within a fused stage
    /// epoch (0 for single-launch dispatches, which ignore it).
    error_sub: usize,
}

/// The type-erased per-launch task: `task(unit)` runs that unit's chunk.
#[derive(Copy, Clone)]
struct Task(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` and guaranteed alive for the whole epoch by
// `PoolShared::dispatch`, which blocks until every active worker finished.
unsafe impl Send for Task {}

/// Dispatch state guarded by the pool mutex. The mutex is held only to
/// publish/observe epochs — never while kernels run.
struct Ctrl {
    epoch: u64,
    active: usize,
    remaining: usize,
    task: Option<Task>,
    /// First panic payload caught from a worker this epoch (resumed on the
    /// dispatching thread so a panicking kernel behaves like it does under
    /// the sequential and spawn engines instead of deadlocking the pool).
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    ctrl: Mutex<Ctrl>,
    work: Condvar,
    done: Condvar,
    slots: Vec<UnsafeCell<UnitSlot>>,
}

// SAFETY: `slots` is accessed through `slot_mut` under the documented
// discipline (each worker touches only its own slot during an epoch; the
// dispatcher touches slots only between epochs).
unsafe impl Sync for PoolShared {}

impl PoolShared {
    /// Exclusive access to one unit's result slot.
    ///
    /// # Safety
    /// Callers must guarantee exclusivity: a worker may only access its own
    /// slot while an epoch is running, and the dispatching thread may only
    /// access slots while no epoch is running.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot_mut(&self, unit: usize) -> &mut UnitSlot {
        &mut *self.slots[unit].get()
    }

    /// Publish `task` for units `0..active`, wake them, and block until all
    /// of them have finished. A panic raised by the task on any worker is
    /// re-raised here (after every worker finished the epoch), leaving the
    /// pool itself healthy for subsequent launches; the panicked launch's
    /// per-unit results are discarded by the caller's unwind.
    fn dispatch(&self, active: usize, task: &(dyn Fn(usize) + Sync)) {
        // SAFETY: erase the borrow lifetime; `task` outlives the epoch
        // because this function does not return until `remaining == 0`.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let mut ctrl = self.ctrl.lock().expect("pool mutex poisoned");
        ctrl.epoch += 1;
        ctrl.active = active;
        ctrl.remaining = active;
        ctrl.task = Some(Task(task as *const _));
        self.work.notify_all();
        while ctrl.remaining > 0 {
            ctrl = self.done.wait(ctrl).expect("pool mutex poisoned");
        }
        ctrl.task = None;
        if let Some(payload) = ctrl.panic.take() {
            drop(ctrl);
            std::panic::resume_unwind(payload);
        }
    }
}

/// The persistent unit threads of [`ExecMode::Parallel`]: spawned once per
/// processor, parked on a condvar between launches.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(units: usize) -> Self {
        let units = units.max(1);
        let shared = Arc::new(PoolShared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                active: 0,
                remaining: 0,
                task: None,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            slots: (0..units)
                .map(|_| UnsafeCell::new(UnitSlot::default()))
                .collect(),
        });
        let handles = (0..units)
            .map(|unit| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stream-unit-{unit}"))
                    .spawn(move || worker_loop(unit, shared))
                    .expect("failed to spawn stream unit thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock().expect("pool mutex poisoned");
            ctrl.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(unit: usize, shared: Arc<PoolShared>) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut ctrl = shared.ctrl.lock().expect("pool mutex poisoned");
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.epoch != seen {
                    seen = ctrl.epoch;
                    if unit < ctrl.active {
                        break ctrl.task.expect("active epoch without a task");
                    }
                    // Not needed this epoch; wait for the next one.
                }
                ctrl = shared.work.wait(ctrl).expect("pool mutex poisoned");
            }
        };
        // Run outside the lock: this is the no-mutex common path. A
        // panicking kernel must still decrement `remaining`, or the
        // dispatcher would wait forever — catch it and hand the payload
        // back for re-raising on the dispatching thread.
        // SAFETY: `dispatch` keeps the task alive until `remaining == 0`.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*task.0)(unit) }));
        let mut ctrl = shared.ctrl.lock().expect("pool mutex poisoned");
        if let Err(payload) = result {
            ctrl.panic.get_or_insert(payload);
        }
        ctrl.remaining -= 1;
        if ctrl.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ReadView, WriteView};
    use crate::layout::Layout;
    use crate::stream::{BlockSet, Stream};
    use crate::value::Value;

    fn doubling_op(proc_: &mut StreamProcessor, input: &Stream<u32>, output: &mut Stream<u32>) {
        let n = input.len();
        let read = ReadView::contiguous(input, 0, n, 1).unwrap();
        let write = WriteView::contiguous(output, 0, n, 1).unwrap();
        proc_
            .launch("double", n, |ctx| {
                let v = read.get(ctx, 0);
                write.set(ctx, 0, v * 2);
            })
            .unwrap();
    }

    #[test]
    fn sequential_launch_runs_all_instances() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(4));
        let input = Stream::from_vec("in", (0u32..100).collect(), Layout::Linear);
        let mut output: Stream<u32> = Stream::new("out", 100, Layout::Linear);
        doubling_op(&mut p, &input, &mut output);
        assert_eq!(output.as_slice()[7], 14);
        assert_eq!(output.as_slice()[99], 198);
        let c = p.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.kernel_instances, 100);
        assert_eq!(c.stream_reads, 100);
        assert_eq!(c.stream_writes, 100);
    }

    #[test]
    fn parallel_launch_matches_sequential_results_and_counts() {
        let input = Stream::from_vec("in", (0u32..10_000).collect(), Layout::ZOrder);

        let mut seq = StreamProcessor::new(GpuProfile::idealized(8));
        let mut out_seq: Stream<u32> = Stream::new("out", 10_000, Layout::ZOrder);
        doubling_op(&mut seq, &input, &mut out_seq);

        let mut par = StreamProcessor::with_mode(GpuProfile::idealized(8), ExecMode::Parallel);
        let mut out_par: Stream<u32> = Stream::new("out", 10_000, Layout::ZOrder);
        doubling_op(&mut par, &input, &mut out_par);

        assert_eq!(out_seq.as_slice(), out_par.as_slice());
        let cs = seq.counters();
        let cp = par.counters();
        assert_eq!(cs.stream_reads, cp.stream_reads);
        assert_eq!(cs.stream_writes, cp.stream_writes);
        assert_eq!(cs.kernel_instances, cp.kernel_instances);
    }

    #[test]
    fn pooled_and_spawn_engines_are_byte_identical() {
        // The pooled engine must preserve everything the legacy
        // spawn-per-launch engine produced: output bytes, every counter,
        // the per-unit cache statistics, and the simulated time.
        let input = Stream::from_vec("in", (0u32..5_000).collect(), Layout::ZOrder);

        let run = |mode: ExecMode| {
            let mut p = StreamProcessor::with_mode(GpuProfile::geforce_6800(), mode);
            let mut out: Stream<u32> = Stream::new("out", 5_000, Layout::ZOrder);
            for _ in 0..3 {
                doubling_op(&mut p, &input, &mut out);
            }
            (out.as_slice().to_vec(), p.counters(), p.simulated_time())
        };
        let (out_pool, c_pool, t_pool) = run(ExecMode::Parallel);
        let (out_spawn, c_spawn, t_spawn) = run(ExecMode::SpawnParallel);
        assert_eq!(out_pool, out_spawn);
        assert_eq!(c_pool, c_spawn);
        assert_eq!(t_pool, t_spawn);
    }

    #[test]
    fn pooled_launch_handles_tiny_and_uneven_instance_counts() {
        // Shapes around the unit count: 0 instances (early return), 1, one
        // fewer/more than the unit count, and a count that leaves the last
        // unit empty under ceil-division (instances=9, units=8 → chunk=2 →
        // 5 active units).
        for instances in [0usize, 1, 7, 8, 9, 17] {
            let input = Stream::from_vec("in", (0..instances as u32).collect(), Layout::Linear);
            let mut pooled =
                StreamProcessor::with_mode(GpuProfile::idealized(8), ExecMode::Parallel);
            let mut out_pool: Stream<u32> = Stream::new("out", instances, Layout::Linear);
            let mut seq = StreamProcessor::new(GpuProfile::idealized(8));
            let mut out_seq: Stream<u32> = Stream::new("out", instances, Layout::Linear);
            if instances == 0 {
                pooled.launch("empty", 0, |_ctx| {}).unwrap();
                seq.launch("empty", 0, |_ctx| {}).unwrap();
            } else {
                doubling_op(&mut pooled, &input, &mut out_pool);
                doubling_op(&mut seq, &input, &mut out_seq);
            }
            assert_eq!(out_pool.as_slice(), out_seq.as_slice(), "n={instances}");
            let cp = pooled.counters();
            let cs = seq.counters();
            assert_eq!(cp.launches, cs.launches);
            assert_eq!(cp.kernel_instances, cs.kernel_instances);
            assert_eq!(cp.stream_reads, cs.stream_reads);
            assert_eq!(cp.stream_writes, cs.stream_writes);
        }
    }

    #[test]
    fn pool_threads_are_reused_across_launches() {
        // Hundreds of launches on one processor must not spawn hundreds of
        // thread sets; the pool is created on the first dispatched launch
        // and every later epoch reuses the parked workers. The instance
        // count is above the inline threshold so every launch actually
        // goes through the pool.
        let n = 2 * INLINE_INSTANCES;
        let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), ExecMode::Parallel);
        let input = Stream::from_vec("in", (0..n as u32).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", n, Layout::Linear);
        for _ in 0..300 {
            doubling_op(&mut p, &input, &mut out);
        }
        assert!(p.pool.is_some(), "dispatched launches must create the pool");
        assert_eq!(p.pool.as_ref().unwrap().handles.len(), 4);
        assert_eq!(p.counters().launches, 300);
        assert_eq!(out.as_slice()[n - 1], 2 * (n as u32 - 1));
    }

    #[test]
    fn small_launches_run_inline_without_creating_the_pool() {
        let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), ExecMode::Parallel);
        let input = Stream::from_vec("in", (0u32..64).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", 64, Layout::Linear);
        for _ in 0..100 {
            doubling_op(&mut p, &input, &mut out);
        }
        assert!(p.pool.is_none(), "inline launches must not spawn workers");
        assert_eq!(out.as_slice()[63], 126);
    }

    #[test]
    fn kernel_panic_on_a_pooled_worker_propagates_and_the_pool_survives() {
        // A panicking kernel must behave like it does under the sequential
        // and spawn engines — propagate to the caller — not deadlock the
        // dispatcher; and the pool must stay usable afterwards.
        let n = 4 * INLINE_INSTANCES; // force the dispatched path
        let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), ExecMode::Parallel);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.launch("boom", n, |ctx| {
                if ctx.instance_index() == n - 1 {
                    panic!("kernel bug");
                }
            });
        }));
        assert!(caught.is_err(), "the worker panic must reach the caller");

        let input = Stream::from_vec("in", (0..n as u32).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", n, Layout::Linear);
        doubling_op(&mut p, &input, &mut out);
        assert_eq!(out.as_slice()[n - 1], 2 * (n as u32 - 1));
    }

    #[test]
    fn output_budget_enforced() {
        // The GeForce profiles allow 16 x 32 bit = 64 bytes per instance;
        // pushing 9 Values (72 bytes) must fail.
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut out: Stream<Value> = Stream::new("out", 16, Layout::Linear);
        let write = WriteView::contiguous(&mut out, 0, 16, 9).unwrap();
        let err = p
            .launch("too-big", 1, |ctx| {
                for slot in 0..9 {
                    write.set(ctx, slot, Value::new(slot as f32, 0));
                }
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::KernelOutputTooLarge { .. }));
    }

    #[test]
    fn output_budget_allows_eight_pairs() {
        // 8 value/pointer pairs = 64 bytes = exactly the limit (Section 7.1).
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut out: Stream<Value> = Stream::new("out", 16, Layout::Linear);
        let write = WriteView::contiguous(&mut out, 0, 16, 8).unwrap();
        p.launch("local-sort", 2, |ctx| {
            for slot in 0..8 {
                write.set(
                    ctx,
                    slot,
                    Value::new(slot as f32, ctx.instance_index() as u32),
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn gather_error_aborts_launch() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let small = Stream::from_vec("small", vec![1u32, 2], Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        let gather = crate::kernel::GatherView::new(&small);
        let write = WriteView::contiguous(&mut out, 0, 4, 1).unwrap();
        let err = p
            .launch("oob", 4, |ctx| {
                let v = gather.gather(ctx, 10 + ctx.instance_index());
                write.set(ctx, 0, v);
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::GatherOutOfBounds { .. }));
    }

    #[test]
    fn error_selection_is_deterministic_across_engines() {
        // The first failing instance is `ok` (the gather stream length);
        // all three engines must return exactly its error, not whichever
        // unit's error won a race. Two shapes: one below the inline
        // threshold and one dispatched through the worker pool.
        for (instances, ok) in [(16usize, 5usize), (4 * INLINE_INSTANCES, 600)] {
            let small = Stream::from_vec("small", (0..ok as u32).collect(), Layout::Linear);
            let run = |mode: ExecMode| {
                let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), mode);
                let mut out: Stream<u32> = Stream::new("out", instances, Layout::Linear);
                let gather = crate::kernel::GatherView::new(&small);
                let write = WriteView::contiguous(&mut out, 0, instances, 1).unwrap();
                p.launch("oob-tail", instances, |ctx| {
                    let v = gather.gather(ctx, ctx.instance_index());
                    write.set(ctx, 0, v);
                })
                .unwrap_err()
            };
            let seq = run(ExecMode::Sequential);
            let pooled = run(ExecMode::Parallel);
            let spawn = run(ExecMode::SpawnParallel);
            assert_eq!(
                seq,
                StreamError::GatherOutOfBounds {
                    stream_len: ok,
                    index: ok
                },
                "instances={instances}"
            );
            assert_eq!(seq, pooled, "instances={instances}");
            assert_eq!(seq, spawn, "instances={instances}");
        }
    }

    #[test]
    fn distinct_io_check() {
        let p = StreamProcessor::new(GpuProfile::geforce_6800());
        let a: Stream<u32> = Stream::new("a", 4, Layout::Linear);
        let b: Stream<u32> = Stream::new("b", 4, Layout::Linear);
        assert!(p
            .check_distinct_io(&[(a.id(), a.name())], &[(b.id(), b.name())])
            .is_ok());
        let err = p
            .check_distinct_io(&[(a.id(), a.name())], &[(a.id(), a.name())])
            .unwrap_err();
        assert!(matches!(err, StreamError::InputOutputAliasing { .. }));

        let ideal = StreamProcessor::new(GpuProfile::idealized(1));
        assert!(ideal
            .check_distinct_io(&[(a.id(), a.name())], &[(a.id(), a.name())])
            .is_ok());
    }

    #[test]
    fn stream_size_limit_enforced() {
        let p = StreamProcessor::new(GpuProfile::geforce_6800());
        assert!(p.check_stream_size::<Value>(2048 * 2048).is_ok());
        let err = p.check_stream_size::<Value>(2048 * 2048 + 1).unwrap_err();
        assert!(matches!(err, StreamError::StreamTooLarge { .. }));
    }

    #[test]
    fn multi_block_support_check() {
        let multi = StreamProcessor::new(GpuProfile::geforce_6800());
        assert!(multi.check_multi_block(4).is_ok());
        let single = StreamProcessor::new(GpuProfile::geforce_6800().with_multi_block(false));
        assert!(single.check_multi_block(1).is_ok());
        assert_eq!(
            single.check_multi_block(2).unwrap_err(),
            StreamError::MultiBlockUnsupported
        );
    }

    #[test]
    fn steps_and_reset() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let input = Stream::from_vec("in", (0u32..4).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        doubling_op(&mut p, &input, &mut out);
        doubling_op(&mut p, &input, &mut out);
        p.record_step();
        let c = p.counters();
        assert_eq!(c.launches, 2);
        assert_eq!(c.steps, 1);
        assert!(p.simulated_time().total_ms > 0.0);
        p.reset();
        assert_eq!(p.counters(), Counters::new());
    }

    #[test]
    fn multi_block_write_through_launch() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let mut out: Stream<u32> = Stream::new("out", 8, Layout::Linear);
        let blocks = BlockSet::multi(vec![(4, 2), (0, 2)]).unwrap();
        let write = WriteView::new(&mut out, blocks, 1).unwrap();
        p.launch("scatter-free", 4, |ctx| {
            write.set(ctx, 0, ctx.instance_index() as u32 + 1);
        })
        .unwrap();
        assert_eq!(out.as_slice(), &[3, 4, 0, 0, 1, 2, 0, 0]);
    }

    #[test]
    fn launch_copy_is_byte_identical_across_accounting_modes() {
        let src = Stream::from_vec("src", (0u32..512).collect(), Layout::ZOrder);
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let run = |accounting: AccountingMode| {
                let mut p = StreamProcessor::with_mode(GpuProfile::geforce_6800(), mode);
                p.set_accounting_mode(accounting);
                let mut dst: Stream<u32> = Stream::new("dst", 512, Layout::ZOrder);
                let r = p.launch_copy("copy", &src, &mut dst, (32, 256), 2);
                assert!(r.is_ok());
                (dst.as_slice().to_vec(), p.counters(), p.simulated_time())
            };
            let batched = run(AccountingMode::Batched);
            let reference = run(AccountingMode::PerAccess);
            assert_eq!(batched, reference, "{mode:?}");
            // The copied block landed; everything else stayed default.
            assert_eq!(&batched.0[32..288], src.range(32, 256));
            assert!(batched.0[..32].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn launch_copy_budget_error_is_byte_identical_across_accounting_modes() {
        // A per-instance element count whose bytes exceed the output
        // budget: the launch errors, but each active unit's first instance
        // still ran (and wrote) under the per-element reference — the
        // vectorized path must reproduce the partial writes, the charges
        // and the error exactly.
        let mut profile = GpuProfile::geforce_6800();
        profile.max_kernel_output_bytes = 4; // one u32
        let src = Stream::from_vec("src", (1u32..=64).collect(), Layout::Linear);
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let run = |accounting: AccountingMode| {
                let mut p = StreamProcessor::with_mode(profile.clone(), mode);
                p.set_accounting_mode(accounting);
                let mut dst: Stream<u32> = Stream::new("dst", 64, Layout::Linear);
                let err = p
                    .launch_copy("copy", &src, &mut dst, (0, 64), 2)
                    .unwrap_err();
                (dst.as_slice().to_vec(), p.counters(), err)
            };
            let batched = run(AccountingMode::Batched);
            let reference = run(AccountingMode::PerAccess);
            assert_eq!(batched, reference, "{mode:?}");
            assert!(matches!(
                batched.2,
                StreamError::KernelOutputTooLarge { bytes: 8, .. }
            ));
            // The first instance's pair was written before the abort.
            assert_eq!(&batched.0[..2], &[1, 2]);
        }
    }

    #[test]
    fn take_counters_returns_totals_and_resets_for_reuse() {
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let input = Stream::from_vec("in", (0u32..64).collect(), Layout::ZOrder);
        let mut out: Stream<u32> = Stream::new("out", 64, Layout::ZOrder);
        doubling_op(&mut p, &input, &mut out);
        p.record_step();
        p.charge_transfer(128);

        let taken = p.take_counters();
        assert_eq!(taken.launches, 1);
        assert_eq!(taken.steps, 1);
        assert_eq!(taken.kernel_instances, 64);
        assert_eq!(taken.transfer_bytes, 128);
        assert!(taken.cache.accesses > 0, "cache stats must be merged in");

        // The pooled processor is now clean: no metric bleed into the next
        // batch, and a second take returns zeros.
        assert_eq!(p.counters(), Counters::new());
        assert_eq!(p.simulated_time().total_ms, 0.0);
        assert_eq!(p.take_counters(), Counters::new());

        // A batch executed after the take is accounted from zero.
        doubling_op(&mut p, &input, &mut out);
        assert_eq!(p.counters().launches, 1);
    }

    /// Build the three-sub-launch stage shared by the fusion tests:
    /// `square` (input → mid), copy (mid → out, reading what the first
    /// sub wrote — the cross-launch dependency the barrier must order),
    /// then `negate-check` (a gather of `out` whose reach is capped by
    /// `ok_len` so the error path can be exercised).
    fn stage_subs<'a>(
        input: &'a Stream<u32>,
        mid: &'a mut Stream<u32>,
        out: &'a mut Stream<u32>,
        flags: &'a mut Stream<u32>,
        n: usize,
        ok_len: usize,
    ) -> Vec<SubLaunch<'a>> {
        // The copy reads `mid` while the first sub-launch's WriteView of
        // `mid` is alive — exactly the aliasing a fused stage creates, made
        // sound by the barrier ordering (and by the raw-pointer views).
        let mid_ptr: *mut Stream<u32> = mid;
        let read = ReadView::contiguous(input, 0, n, 1).unwrap();
        // SAFETY: the write (sub 0) and the copy's read (sub 1) of `mid`
        // are ordered by the stage barrier / eager launch boundary.
        let write = WriteView::contiguous(unsafe { &mut *mid_ptr }, 0, n, 1).unwrap();
        let square = SubLaunch::Kernel {
            name: "square",
            instances: n,
            kernel: Box::new(move |ctx| {
                let v = read.get(ctx, 0);
                write.set(ctx, 0, v.wrapping_mul(v));
            }),
        };
        let out_ptr: *const Stream<u32> = out;
        let copy = SubLaunch::Copy(
            StageCopy::new("copy-mid", unsafe { &*mid_ptr }, out, (0, n), 2).unwrap(),
        );
        // SAFETY: sub 2 reads `out` strictly after sub 1 wrote it.
        let gather = crate::kernel::GatherView::new(unsafe { &*out_ptr });
        let flag_write = WriteView::contiguous(flags, 0, n, 1).unwrap();
        let check = SubLaunch::Kernel {
            name: "negate-check",
            instances: n,
            kernel: Box::new(move |ctx| {
                let i = ctx.instance_index() % ok_len.max(1);
                let v = gather.gather(ctx, if ctx.instance_index() < ok_len { i } else { n });
                flag_write.set(ctx, 0, !v);
            }),
        };
        vec![square, copy, check]
    }

    fn run_stage(
        mode: ExecMode,
        stage: bool,
        n: usize,
        ok_len: usize,
    ) -> (Vec<u32>, Vec<u32>, Counters, Result<()>) {
        let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), mode);
        if stage {
            // Exercise the fused path regardless of the host's CPU count
            // (the Auto heuristic would fall back on single-core runners).
            p.set_stage_fusion(StageFusion::Always);
        }
        let input = Stream::from_vec("in", (0..n as u32).collect(), Layout::Linear);
        let mut mid: Stream<u32> = Stream::new("mid", n, Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", n, Layout::Linear);
        let mut flags: Stream<u32> = Stream::new("flags", n, Layout::Linear);
        let subs = stage_subs(&input, &mut mid, &mut out, &mut flags, n, ok_len);
        let r = if stage {
            p.launch_stage(&subs)
        } else {
            // The eager engine: one launch per sub, stop at the first
            // error.
            (|| {
                for sub in &subs {
                    p.exec_sub(sub)?;
                }
                Ok(())
            })()
        };
        drop(subs);
        (
            out.as_slice().to_vec(),
            flags.as_slice().to_vec(),
            p.counters(),
            r,
        )
    }

    #[test]
    fn fused_stage_is_byte_identical_to_eager_launches() {
        // Above the inline threshold in Parallel mode the stage runs as
        // one fused pool epoch; it must be indistinguishable from three
        // eager launches in everything but wall-clock time — including
        // per-unit cache statistics, which `counters()` merges in.
        let n = 4 * INLINE_INSTANCES;
        let fused = run_stage(ExecMode::Parallel, true, n, n);
        let eager = run_stage(ExecMode::Parallel, false, n, n);
        assert_eq!(fused.0, eager.0, "copy output diverged");
        assert_eq!(fused.1, eager.1, "kernel output diverged");
        assert_eq!(fused.2, eager.2, "counters diverged");
        assert!(fused.3.is_ok() && eager.3.is_ok());
        assert_eq!(fused.0[5], 25, "copy must see the first sub's writes");
    }

    #[test]
    fn stage_fallback_contexts_match_eager_launches() {
        // Sequential mode and sub-inline totals never fuse; the stage API
        // must still produce eager-identical results there.
        for (mode, n) in [
            (ExecMode::Sequential, 4 * INLINE_INSTANCES),
            (ExecMode::Parallel, 16),
            (ExecMode::SpawnParallel, 4 * INLINE_INSTANCES),
        ] {
            let staged = run_stage(mode, true, n, n);
            let eager = run_stage(mode, false, n, n);
            assert_eq!(staged.0, eager.0, "{mode:?}");
            assert_eq!(staged.1, eager.1, "{mode:?}");
            assert_eq!(staged.2, eager.2, "{mode:?}");
        }
    }

    #[test]
    fn fused_stage_error_matches_eager_error_and_counters() {
        // The last sub-launch gathers out of bounds from `ok_len` onwards:
        // the fused epoch must return exactly the eager engine's error
        // (first failing instance in unit order of the failing launch)
        // with identical counters and stream contents.
        let n = 4 * INLINE_INSTANCES;
        let ok = 600;
        let fused = run_stage(ExecMode::Parallel, true, n, ok);
        let eager = run_stage(ExecMode::Parallel, false, n, ok);
        assert_eq!(fused.0, eager.0);
        assert_eq!(fused.1, eager.1);
        assert_eq!(fused.2, eager.2, "error-path counters diverged");
        assert_eq!(
            fused.3.unwrap_err(),
            eager.3.unwrap_err(),
            "error selection diverged"
        );
    }

    #[test]
    fn fused_stage_panic_propagates_and_the_pool_survives() {
        let n = 4 * INLINE_INSTANCES;
        let mut p = StreamProcessor::with_mode(GpuProfile::idealized(4), ExecMode::Parallel);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let subs = vec![
                SubLaunch::Kernel {
                    name: "ok",
                    instances: n,
                    kernel: Box::new(|_ctx| {}),
                },
                SubLaunch::Kernel {
                    name: "boom",
                    instances: n,
                    kernel: Box::new(move |ctx| {
                        if ctx.instance_index() == n - 1 {
                            panic!("kernel bug");
                        }
                    }),
                },
            ];
            let _ = p.launch_stage(&subs);
        }));
        assert!(caught.is_err(), "the worker panic must reach the caller");
        // The pool must stay healthy for later dispatches.
        let input = Stream::from_vec("in", (0..n as u32).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", n, Layout::Linear);
        doubling_op(&mut p, &input, &mut out);
        assert_eq!(out.as_slice()[n - 1], 2 * (n as u32 - 1));
    }

    #[test]
    fn transfer_charge_appears_in_sim_time() {
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        p.charge_transfer(2 * 8 * (1 << 20));
        let t = p.simulated_time();
        assert!(t.breakdown.transfer_ms > 50.0);
    }
}
