//! The stream processor: launches kernels over substreams and accounts for
//! their cost.
//!
//! A [`StreamProcessor`] owns
//!
//! * a [`GpuProfile`] (the hardware being simulated),
//! * one texture cache per processor unit,
//! * the accumulated [`Counters`].
//!
//! [`StreamProcessor::launch`] executes one *stream operation*: it runs the
//! kernel closure once per instance, either sequentially (deterministic
//! reference mode) or distributed over the profile's `p` units on real
//! threads ([`ExecMode::Parallel`]). Either way the cost accounting is
//! identical; parallel mode exists to demonstrate real wall-clock scaling
//! with `p` and to keep large benchmark runs fast.
//!
//! The processor enforces the hardware restrictions of Sections 3.2, 6.1
//! and 7.1: maximum stream size, per-instance output budget, and (via
//! [`StreamProcessor::check_distinct_io`]) distinctness of input and output
//! streams.

use crate::cache::CacheSim;
use crate::error::{Result, StreamError};
use crate::kernel::KernelCtx;
use crate::metrics::{Counters, SimTime};
use crate::profile::GpuProfile;
use crate::value::StreamElement;
use parking_lot::Mutex;

/// How kernel instances of a launch are executed on the host.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// All instances run on the calling thread, in instance order. The
    /// default: fully deterministic, easiest to debug, and the cost model
    /// is unaffected by host parallelism.
    Sequential,
    /// Instances are distributed over the profile's `units` on real host
    /// threads (contiguous chunks, one per unit). Used by the wall-clock
    /// scaling experiments.
    Parallel,
}

/// The simulated stream processor.
pub struct StreamProcessor {
    profile: GpuProfile,
    mode: ExecMode,
    caches: Vec<CacheSim>,
    counters: Counters,
}

impl StreamProcessor {
    /// Create a processor for the given hardware profile (sequential host
    /// execution).
    pub fn new(profile: GpuProfile) -> Self {
        Self::with_mode(profile, ExecMode::Sequential)
    }

    /// Create a processor with an explicit host execution mode.
    pub fn with_mode(profile: GpuProfile, mode: ExecMode) -> Self {
        let caches = (0..profile.units)
            .map(|_| CacheSim::new(profile.cache))
            .collect();
        StreamProcessor {
            profile,
            mode,
            caches,
            counters: Counters::new(),
        }
    }

    /// The hardware profile being simulated.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// The host execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Change the host execution mode.
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Accumulated counters, with the per-unit cache statistics merged in.
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        let mut cache = crate::cache::CacheStats::default();
        for unit_cache in &self.caches {
            cache.merge(unit_cache.stats());
        }
        c.cache = cache;
        c
    }

    /// Reset all counters and cache contents.
    pub fn reset(&mut self) {
        self.counters = Counters::new();
        for cache in &mut self.caches {
            cache.reset();
        }
    }

    /// Return the accumulated counters (cache statistics merged in) and
    /// reset the processor in one step.
    ///
    /// This is the reuse hook for processor pooling: a service that keeps
    /// one processor per device slot takes the counters after every batch,
    /// so the next batch starts from a clean record and no metrics bleed
    /// between tenants or batches.
    pub fn take_counters(&mut self) -> Counters {
        let c = self.counters();
        self.reset();
        c
    }

    /// Simulated running time of everything executed since the last reset.
    pub fn simulated_time(&self) -> SimTime {
        self.profile.simulate(&self.counters())
    }

    /// Record that the launches issued since the previous step boundary
    /// together form one stream operation on hardware with multi-block
    /// substreams (Section 5.4). Algorithms that never call this get
    /// `steps == 0`, and the cost model falls back to counting launches.
    pub fn record_step(&mut self) {
        self.counters.steps += 1;
    }

    /// Charge a host↔device round-trip transfer of `bytes` bytes in each
    /// direction (Section 8).
    pub fn charge_transfer(&mut self, round_trip_bytes: u64) {
        self.counters.transfer_bytes += round_trip_bytes;
    }

    /// Validate that a stream of `len` elements of type `T` fits within the
    /// profile's 2D stream size limit (Section 3.2).
    pub fn check_stream_size<T: StreamElement>(&self, len: usize) -> Result<()> {
        let max = self.profile.max_stream_elements();
        if len > max {
            return Err(StreamError::StreamTooLarge {
                elements: len,
                max_elements: max,
            });
        }
        Ok(())
    }

    /// Validate that the input/gather stream ids and output stream ids of a
    /// stream operation are distinct, as required by the paper's GPUs
    /// (Section 6.1). Profiles with `distinct_io == false` (the idealized
    /// machine) skip the check.
    pub fn check_distinct_io(&self, inputs: &[(u64, &str)], outputs: &[(u64, &str)]) -> Result<()> {
        if !self.profile.distinct_io {
            return Ok(());
        }
        for &(in_id, in_name) in inputs {
            for &(out_id, _) in outputs {
                if in_id == out_id {
                    return Err(StreamError::InputOutputAliasing {
                        stream: in_name.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validate that multi-block substreams are supported before using one
    /// (Section 5.4).
    pub fn check_multi_block(&self, num_blocks: usize) -> Result<()> {
        if num_blocks > 1 && !self.profile.multi_block_substreams {
            return Err(StreamError::MultiBlockUnsupported);
        }
        Ok(())
    }

    /// Execute one stream operation: run `kernel` for `instances` kernel
    /// instances.
    ///
    /// The kernel closure receives a [`KernelCtx`] carrying the instance
    /// index; stream access goes through the views of [`crate::kernel`]
    /// captured in the closure's environment. Constraint violations
    /// detected during execution (gather out of bounds, output overflow,
    /// per-instance output budget exceeded, …) abort the launch and are
    /// returned as errors.
    pub fn launch<F>(&mut self, _name: &str, instances: usize, kernel: F) -> Result<()>
    where
        F: Fn(&mut KernelCtx<'_>) + Sync,
    {
        self.counters.launches += 1;
        self.counters.kernel_instances += instances as u64;
        if instances == 0 {
            return Ok(());
        }
        let max_output_bytes = self.profile.max_kernel_output_bytes;

        match self.mode {
            ExecMode::Sequential => {
                let mut local = Counters::new();
                let cache = &mut self.caches[0];
                let result = run_chunk(
                    0,
                    0,
                    instances,
                    &kernel,
                    &mut local,
                    cache,
                    max_output_bytes,
                );
                self.counters += &local;
                // Subtract the fields launch() already counted.
                self.counters.launches -= 0;
                result
            }
            ExecMode::Parallel => {
                let units = self.profile.units.min(instances);
                let chunk = instances.div_ceil(units);
                let merged: Mutex<Counters> = Mutex::new(Counters::new());
                let first_error: Mutex<Option<StreamError>> = Mutex::new(None);
                std::thread::scope(|scope| {
                    for (unit, cache) in self.caches.iter_mut().take(units).enumerate() {
                        let start = unit * chunk;
                        let end = ((unit + 1) * chunk).min(instances);
                        if start >= end {
                            break;
                        }
                        let kernel = &kernel;
                        let merged = &merged;
                        let first_error = &first_error;
                        scope.spawn(move || {
                            let mut local = Counters::new();
                            let r = run_chunk(
                                unit,
                                start,
                                end,
                                kernel,
                                &mut local,
                                cache,
                                max_output_bytes,
                            );
                            *merged.lock() += &local;
                            if let Err(e) = r {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                        });
                    }
                });
                self.counters += &merged.into_inner();
                match first_error.into_inner() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }
}

/// Run instances `[start, end)` on one simulated unit.
fn run_chunk<F>(
    unit: usize,
    start: usize,
    end: usize,
    kernel: &F,
    local: &mut Counters,
    cache: &mut CacheSim,
    max_output_bytes: usize,
) -> Result<()>
where
    F: Fn(&mut KernelCtx<'_>) + Sync,
{
    for instance in start..end {
        let mut ctx = KernelCtx {
            instance,
            unit,
            counters: local,
            cache: Some(cache),
            bytes_pushed: 0,
            max_output_bytes,
            error: None,
        };
        kernel(&mut ctx);
        if ctx.bytes_pushed > ctx.max_output_bytes {
            return Err(StreamError::KernelOutputTooLarge {
                bytes: ctx.bytes_pushed,
                max_bytes: ctx.max_output_bytes,
            });
        }
        if let Some(e) = ctx.error {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ReadView, WriteView};
    use crate::layout::Layout;
    use crate::stream::{BlockSet, Stream};
    use crate::value::Value;

    fn doubling_op(proc_: &mut StreamProcessor, input: &Stream<u32>, output: &mut Stream<u32>) {
        let n = input.len();
        let read = ReadView::contiguous(input, 0, n, 1).unwrap();
        let write = WriteView::contiguous(output, 0, n, 1).unwrap();
        proc_
            .launch("double", n, |ctx| {
                let v = read.get(ctx, 0);
                write.set(ctx, 0, v * 2);
            })
            .unwrap();
    }

    #[test]
    fn sequential_launch_runs_all_instances() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(4));
        let input = Stream::from_vec("in", (0u32..100).collect(), Layout::Linear);
        let mut output: Stream<u32> = Stream::new("out", 100, Layout::Linear);
        doubling_op(&mut p, &input, &mut output);
        assert_eq!(output.as_slice()[7], 14);
        assert_eq!(output.as_slice()[99], 198);
        let c = p.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.kernel_instances, 100);
        assert_eq!(c.stream_reads, 100);
        assert_eq!(c.stream_writes, 100);
    }

    #[test]
    fn parallel_launch_matches_sequential_results_and_counts() {
        let input = Stream::from_vec("in", (0u32..10_000).collect(), Layout::ZOrder);

        let mut seq = StreamProcessor::new(GpuProfile::idealized(8));
        let mut out_seq: Stream<u32> = Stream::new("out", 10_000, Layout::ZOrder);
        doubling_op(&mut seq, &input, &mut out_seq);

        let mut par = StreamProcessor::with_mode(GpuProfile::idealized(8), ExecMode::Parallel);
        let mut out_par: Stream<u32> = Stream::new("out", 10_000, Layout::ZOrder);
        doubling_op(&mut par, &input, &mut out_par);

        assert_eq!(out_seq.as_slice(), out_par.as_slice());
        let cs = seq.counters();
        let cp = par.counters();
        assert_eq!(cs.stream_reads, cp.stream_reads);
        assert_eq!(cs.stream_writes, cp.stream_writes);
        assert_eq!(cs.kernel_instances, cp.kernel_instances);
    }

    #[test]
    fn output_budget_enforced() {
        // The GeForce profiles allow 16 x 32 bit = 64 bytes per instance;
        // pushing 9 Values (72 bytes) must fail.
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut out: Stream<Value> = Stream::new("out", 16, Layout::Linear);
        let write = WriteView::contiguous(&mut out, 0, 16, 9).unwrap();
        let err = p
            .launch("too-big", 1, |ctx| {
                for slot in 0..9 {
                    write.set(ctx, slot, Value::new(slot as f32, 0));
                }
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::KernelOutputTooLarge { .. }));
    }

    #[test]
    fn output_budget_allows_eight_pairs() {
        // 8 value/pointer pairs = 64 bytes = exactly the limit (Section 7.1).
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let mut out: Stream<Value> = Stream::new("out", 16, Layout::Linear);
        let write = WriteView::contiguous(&mut out, 0, 16, 8).unwrap();
        p.launch("local-sort", 2, |ctx| {
            for slot in 0..8 {
                write.set(
                    ctx,
                    slot,
                    Value::new(slot as f32, ctx.instance_index() as u32),
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn gather_error_aborts_launch() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let small = Stream::from_vec("small", vec![1u32, 2], Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        let gather = crate::kernel::GatherView::new(&small);
        let write = WriteView::contiguous(&mut out, 0, 4, 1).unwrap();
        let err = p
            .launch("oob", 4, |ctx| {
                let v = gather.gather(ctx, 10 + ctx.instance_index());
                write.set(ctx, 0, v);
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::GatherOutOfBounds { .. }));
    }

    #[test]
    fn distinct_io_check() {
        let p = StreamProcessor::new(GpuProfile::geforce_6800());
        let a: Stream<u32> = Stream::new("a", 4, Layout::Linear);
        let b: Stream<u32> = Stream::new("b", 4, Layout::Linear);
        assert!(p
            .check_distinct_io(&[(a.id(), a.name())], &[(b.id(), b.name())])
            .is_ok());
        let err = p
            .check_distinct_io(&[(a.id(), a.name())], &[(a.id(), a.name())])
            .unwrap_err();
        assert!(matches!(err, StreamError::InputOutputAliasing { .. }));

        let ideal = StreamProcessor::new(GpuProfile::idealized(1));
        assert!(ideal
            .check_distinct_io(&[(a.id(), a.name())], &[(a.id(), a.name())])
            .is_ok());
    }

    #[test]
    fn stream_size_limit_enforced() {
        let p = StreamProcessor::new(GpuProfile::geforce_6800());
        assert!(p.check_stream_size::<Value>(2048 * 2048).is_ok());
        let err = p.check_stream_size::<Value>(2048 * 2048 + 1).unwrap_err();
        assert!(matches!(err, StreamError::StreamTooLarge { .. }));
    }

    #[test]
    fn multi_block_support_check() {
        let multi = StreamProcessor::new(GpuProfile::geforce_6800());
        assert!(multi.check_multi_block(4).is_ok());
        let single = StreamProcessor::new(GpuProfile::geforce_6800().with_multi_block(false));
        assert!(single.check_multi_block(1).is_ok());
        assert_eq!(
            single.check_multi_block(2).unwrap_err(),
            StreamError::MultiBlockUnsupported
        );
    }

    #[test]
    fn steps_and_reset() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let input = Stream::from_vec("in", (0u32..4).collect(), Layout::Linear);
        let mut out: Stream<u32> = Stream::new("out", 4, Layout::Linear);
        doubling_op(&mut p, &input, &mut out);
        doubling_op(&mut p, &input, &mut out);
        p.record_step();
        let c = p.counters();
        assert_eq!(c.launches, 2);
        assert_eq!(c.steps, 1);
        assert!(p.simulated_time().total_ms > 0.0);
        p.reset();
        assert_eq!(p.counters(), Counters::new());
    }

    #[test]
    fn multi_block_write_through_launch() {
        let mut p = StreamProcessor::new(GpuProfile::idealized(1));
        let mut out: Stream<u32> = Stream::new("out", 8, Layout::Linear);
        let blocks = BlockSet::multi(vec![(4, 2), (0, 2)]).unwrap();
        let write = WriteView::new(&mut out, blocks, 1).unwrap();
        p.launch("scatter-free", 4, |ctx| {
            write.set(ctx, 0, ctx.instance_index() as u32 + 1);
        })
        .unwrap();
        assert_eq!(out.as_slice(), &[3, 4, 0, 0, 1, 2, 0, 0]);
    }

    #[test]
    fn take_counters_returns_totals_and_resets_for_reuse() {
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        let input = Stream::from_vec("in", (0u32..64).collect(), Layout::ZOrder);
        let mut out: Stream<u32> = Stream::new("out", 64, Layout::ZOrder);
        doubling_op(&mut p, &input, &mut out);
        p.record_step();
        p.charge_transfer(128);

        let taken = p.take_counters();
        assert_eq!(taken.launches, 1);
        assert_eq!(taken.steps, 1);
        assert_eq!(taken.kernel_instances, 64);
        assert_eq!(taken.transfer_bytes, 128);
        assert!(taken.cache.accesses > 0, "cache stats must be merged in");

        // The pooled processor is now clean: no metric bleed into the next
        // batch, and a second take returns zeros.
        assert_eq!(p.counters(), Counters::new());
        assert_eq!(p.simulated_time().total_ms, 0.0);
        assert_eq!(p.take_counters(), Counters::new());

        // A batch executed after the take is accounted from zero.
        doubling_op(&mut p, &input, &mut out);
        assert_eq!(p.counters().launches, 1);
    }

    #[test]
    fn transfer_charge_appears_in_sim_time() {
        let mut p = StreamProcessor::new(GpuProfile::geforce_6800());
        p.charge_transfer(2 * 8 * (1 << 20));
        let t = p.simulated_time();
        assert!(t.breakdown.transfer_ms > 50.0);
    }
}
