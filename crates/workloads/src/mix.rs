//! Seeded request-mix generators for the sorting service.
//!
//! A serving layer is exercised by a *traffic mix*, not a single array: many
//! tenants submit sort jobs of different sizes and key distributions at
//! different times. [`RequestMix`] describes such a mix declaratively
//! (size classes with weights, a distribution pool, tenant count, mean
//! inter-arrival gap) and [`RequestMix::generate`] materialises it into a
//! deterministic, seeded stream of [`Request`]s — every run of an
//! experiment or benchmark sees byte-identical traffic.
//!
//! The presets mirror the regimes of the paper's evaluation: the
//! [`RequestMix::small_job_heavy`] mix lives below the CPU/GPU crossover of
//! Section 8 (where per-launch overhead dominates and coalescing pays), the
//! [`RequestMix::mixed`] preset straddles it so an engine-selection policy
//! has real decisions to make.

use crate::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream_arch::Value;

/// One synthetic client request: a sort job the service will admit.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Simulated arrival time in milliseconds (non-decreasing across the
    /// generated stream).
    pub arrival_ms: f64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// The key distribution the values were drawn from (usable as a policy
    /// hint).
    pub dist: Distribution,
    /// The value/pointer pairs to sort.
    pub values: Vec<Value>,
}

/// A weighted job-size class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SizeClass {
    /// Relative weight of this class in the mix.
    pub weight: u32,
    /// Minimum job size (elements, inclusive).
    pub min: usize,
    /// Maximum job size (elements, inclusive).
    pub max: usize,
}

/// A declarative description of service traffic.
#[derive(Clone, Debug)]
pub struct RequestMix {
    /// Number of requests to generate.
    pub jobs: usize,
    /// Number of tenants the requests are spread over.
    pub tenants: u32,
    /// Mean gap between consecutive arrivals in simulated milliseconds
    /// (actual gaps are uniform in `[0, 2·mean)`).
    pub mean_interarrival_ms: f64,
    /// Weighted size classes jobs are drawn from.
    pub size_classes: Vec<SizeClass>,
    /// Distributions jobs are drawn from (uniformly).
    pub distributions: Vec<Distribution>,
}

impl RequestMix {
    /// A mix dominated by jobs far below the CPU/GPU crossover (Section 8:
    /// quicksort wins below ~32k keys) — the regime where batched
    /// coalescing amortizes the per-stream-op launch overhead.
    pub fn small_job_heavy(jobs: usize) -> Self {
        RequestMix {
            jobs,
            tenants: 4,
            mean_interarrival_ms: 0.05,
            size_classes: vec![
                SizeClass {
                    weight: 6,
                    min: 32,
                    max: 256,
                },
                SizeClass {
                    weight: 3,
                    min: 256,
                    max: 1024,
                },
                SizeClass {
                    weight: 1,
                    min: 1024,
                    max: 2048,
                },
            ],
            distributions: vec![
                Distribution::Uniform,
                Distribution::Sorted,
                Distribution::NearlySorted { swaps: 16 },
                Distribution::FewDistinct { distinct: 8 },
            ],
        }
        .normalized()
    }

    /// A mix that straddles the CPU/GPU crossover: mostly small jobs with a
    /// tail of large ones, so the policy engine routes work to both
    /// engines.
    pub fn mixed(jobs: usize) -> Self {
        RequestMix {
            jobs,
            tenants: 8,
            mean_interarrival_ms: 0.2,
            size_classes: vec![
                SizeClass {
                    weight: 8,
                    min: 64,
                    max: 512,
                },
                SizeClass {
                    weight: 3,
                    min: 2048,
                    max: 8192,
                },
                SizeClass {
                    weight: 1,
                    min: 16384,
                    max: 65536,
                },
            ],
            distributions: vec![
                Distribution::Uniform,
                Distribution::Reverse,
                Distribution::OrganPipe,
                Distribution::NearlySorted { swaps: 64 },
            ],
        }
        .normalized()
    }

    /// A mix dominated by jobs large enough for the multi-device sharded
    /// route (hundreds of thousands of keys), with a trickle of small jobs
    /// that must stay interleaved — the fairness scenario of a service
    /// whose sharded batches reserve several device slots at once.
    pub fn large_job_heavy(jobs: usize) -> Self {
        RequestMix {
            jobs,
            tenants: 3,
            mean_interarrival_ms: 8.0,
            size_classes: vec![
                SizeClass {
                    weight: 2,
                    min: 1 << 17,
                    max: 1 << 19,
                },
                SizeClass {
                    weight: 3,
                    min: 128,
                    max: 1024,
                },
            ],
            distributions: vec![
                Distribution::Uniform,
                Distribution::Reverse,
                Distribution::FewDistinct { distinct: 64 },
            ],
        }
        .normalized()
    }

    /// A per-connection mix for the networked front-end: the stream one
    /// client pushes down one TCP connection. Sizes stay modest (wire
    /// jobs are encoded, shipped and echoed back, so megabyte jobs would
    /// measure the loopback, not the service), a single tenant per
    /// connection (the client stamps its own tenant id), and zero
    /// inter-arrival gap — a soak client submits as fast as its pipeline
    /// window allows, so arrival pacing comes from the wire, not the
    /// generator.
    pub fn connection_driven(jobs: usize) -> Self {
        RequestMix {
            jobs,
            tenants: 1,
            mean_interarrival_ms: 0.0,
            size_classes: vec![
                SizeClass {
                    weight: 6,
                    min: 64,
                    max: 512,
                },
                SizeClass {
                    weight: 3,
                    min: 512,
                    max: 4096,
                },
                SizeClass {
                    weight: 1,
                    min: 8192,
                    max: 16384,
                },
            ],
            distributions: vec![
                Distribution::Uniform,
                Distribution::Reverse,
                Distribution::NearlySorted { swaps: 32 },
                Distribution::FewDistinct { distinct: 16 },
            ],
        }
        .normalized()
    }

    /// Generate the deterministic request stream for `seed`.
    ///
    /// Requests arrive in non-decreasing `arrival_ms` order; tenants,
    /// sizes and distributions are sampled independently per request, and
    /// every request's values come from their own derived seed, so two
    /// mixes differing only in `seed` share no data.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(
            !self.size_classes.is_empty(),
            "need at least one size class"
        );
        assert!(
            !self.distributions.is_empty(),
            "need at least one distribution"
        );
        let total_weight: u32 = self.size_classes.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0, "size-class weights must not all be zero");

        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrival_ms = 0.0f64;
        let mut requests = Vec::with_capacity(self.jobs);
        for _ in 0..self.jobs {
            arrival_ms +=
                rng.gen_range(0.0..2.0 * self.mean_interarrival_ms.max(f64::MIN_POSITIVE));
            let tenant = rng.gen_range(0..self.tenants);

            let mut pick = rng.gen_range(0..total_weight);
            let class = self
                .size_classes
                .iter()
                .find(|c| {
                    if pick < c.weight {
                        true
                    } else {
                        pick -= c.weight;
                        false
                    }
                })
                .expect("weighted pick is within the total weight");
            let n = class.min + rng.gen_range(0..(class.max - class.min + 1));

            let dist = self.distributions[rng.gen_range(0..self.distributions.len())];
            let values = crate::generate(dist, n, rng.gen::<u64>());
            requests.push(Request {
                arrival_ms,
                tenant,
                dist,
                values,
            });
        }
        requests
    }

    fn normalized(mut self) -> Self {
        for class in &mut self.size_classes {
            assert!(class.min <= class.max, "size class min must be <= max");
        }
        self.tenants = self.tenants.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mix = RequestMix::small_job_heavy(50);
        let a = mix.generate(7);
        let b = mix.generate(7);
        let c = mix.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_non_decreasing() {
        let reqs = RequestMix::mixed(100).generate(3);
        assert_eq!(reqs.len(), 100);
        assert!(reqs.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(reqs[0].arrival_ms >= 0.0);
    }

    #[test]
    fn sizes_and_tenants_respect_the_mix() {
        let mix = RequestMix::small_job_heavy(200);
        let lo = mix.size_classes.iter().map(|c| c.min).min().unwrap();
        let hi = mix.size_classes.iter().map(|c| c.max).max().unwrap();
        for r in mix.generate(11) {
            assert!(r.values.len() >= lo && r.values.len() <= hi);
            assert!(r.tenant < mix.tenants);
            assert!(mix.distributions.contains(&r.dist));
            // Generated ids are positions, the distinctness property the
            // sorters rely on.
            for (i, v) in r.values.iter().enumerate() {
                assert_eq!(v.id, i as u32);
            }
        }
    }

    #[test]
    fn small_job_heavy_stays_below_the_paper_crossover() {
        // The preset exists to exercise the coalescing regime, so every job
        // must stay below the ~32k-key crossover of Section 8.
        for r in RequestMix::small_job_heavy(100).generate(1) {
            assert!(r.values.len() < 32 * 1024);
        }
    }

    #[test]
    fn mixed_preset_produces_both_sides_of_the_crossover() {
        let reqs = RequestMix::mixed(300).generate(5);
        assert!(reqs.iter().any(|r| r.values.len() < 1024));
        assert!(reqs.iter().any(|r| r.values.len() > 16 * 1024));
    }

    #[test]
    fn connection_driven_is_single_tenant_and_wire_sized() {
        let mix = RequestMix::connection_driven(60);
        let reqs = mix.generate(13);
        assert_eq!(reqs.len(), 60);
        for r in &reqs {
            // One tenant per connection: the wire client stamps its own.
            assert_eq!(r.tenant, 0);
            assert!(r.values.len() >= 64 && r.values.len() <= 16384);
        }
        // Mostly coalescer-regime jobs with a tail above the cutoff.
        assert!(reqs.iter().filter(|r| r.values.len() < 1024).count() > reqs.len() / 3);
        assert!(reqs.iter().any(|r| r.values.len() > 4096));
    }

    #[test]
    fn large_job_heavy_mixes_sharded_scale_jobs_with_small_ones() {
        let reqs = RequestMix::large_job_heavy(40).generate(7);
        assert!(reqs.iter().any(|r| r.values.len() >= 1 << 17));
        assert!(reqs.iter().any(|r| r.values.len() <= 1024));
    }
}
