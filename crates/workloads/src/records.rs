//! Record payloads for the "sorting arbitrary data based on a sort key"
//! scenario of Section 8 and the GPUTeraSort-style database example.
//!
//! The paper sorts an array of value/pointer pairs where the pointer
//! refers to the associated data record; after sorting, the application
//! walks the pairs and dereferences the pointers. [`RecordTable`] is that
//! associated data: a table of fixed-width records addressed by the `id`
//! stored in each [`Value`], plus the reorder step a database system would
//! perform after the key sort (the "reorder stage" of the GPUTeraSort
//! pipeline described in Section 2.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream_arch::Value;

/// A fixed-width database-style record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The sort key (duplicated inside the record, as a real table would).
    pub key: f32,
    /// Fixed-width payload standing in for the rest of the row.
    pub payload: [u8; 24],
}

/// A table of records addressed by record id.
#[derive(Clone, Debug)]
pub struct RecordTable {
    records: Vec<Record>,
}

impl RecordTable {
    /// Generate `n` records with uniform random keys.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let records = (0..n)
            .map(|i| {
                let key = rng.gen::<f32>();
                let mut payload = [0u8; 24];
                payload[..8].copy_from_slice(&(i as u64).to_le_bytes());
                rng.fill(&mut payload[8..]);
                Record { key, payload }
            })
            .collect();
        RecordTable { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the given id.
    pub fn get(&self, id: u32) -> &Record {
        &self.records[id as usize]
    }

    /// Extract the key/pointer pairs to hand to a sorter (the "key
    /// generator stage").
    pub fn sort_keys(&self) -> Vec<Value> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| Value::new(r.key, i as u32))
            .collect()
    }

    /// Apply a sorted key/pointer sequence to produce the reordered record
    /// table (the "reorder stage").
    pub fn reorder(&self, sorted_keys: &[Value]) -> Vec<Record> {
        sorted_keys
            .iter()
            .map(|v| self.records[v.id as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_keys_point_back_at_records() {
        let table = RecordTable::generate(100, 3);
        assert_eq!(table.len(), 100);
        assert!(!table.is_empty());
        for (i, v) in table.sort_keys().iter().enumerate() {
            assert_eq!(v.id, i as u32);
            assert_eq!(v.key, table.get(v.id).key);
        }
    }

    #[test]
    fn reorder_produces_key_sorted_records() {
        let table = RecordTable::generate(256, 4);
        let mut keys = table.sort_keys();
        keys.sort();
        let reordered = table.reorder(&keys);
        assert_eq!(reordered.len(), 256);
        assert!(reordered.windows(2).all(|w| w[0].key <= w[1].key));
        // Payloads still identify their original row.
        for (v, r) in keys.iter().zip(&reordered) {
            assert_eq!(&r.payload[..8], &(v.id as u64).to_le_bytes());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RecordTable::generate(32, 9);
        let b = RecordTable::generate(32, 9);
        assert_eq!(a.records, b.records);
    }
}
