//! # workloads — input generators for the GPU-ABiSort reproduction
//!
//! The paper's evaluation (Section 8) sorts *value/pointer pairs* with
//! "uniformly distributed random floating point sort keys". The timing
//! brackets it reports for the CPU sort ("12 – 16 ms") reflect quicksort's
//! data dependence, so the data-dependence experiment (E10) additionally
//! needs sorted, reverse-sorted, nearly-sorted and few-distinct-keys
//! inputs. All generators here are deterministic given a seed, so every
//! experiment is reproducible.
//!
//! The `id` field of every generated [`Value`] is its position in the
//! generated sequence, which makes ids unique — the property the adaptive
//! bitonic sort relies on for distinctness (Section 4) — and lets tests
//! verify permutation preservation cheaply.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use stream_arch::Value;

pub mod columnar;
pub mod mix;
pub mod records;

pub use columnar::{Column, ColumnBatch};
pub use mix::{Request, RequestMix, SizeClass};

/// The input distributions used by the experiments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniformly distributed random keys (the paper's main workload).
    Uniform,
    /// Already sorted ascending (quicksort-friendly or -hostile depending
    /// on the pivot strategy).
    Sorted,
    /// Sorted descending.
    Reverse,
    /// Sorted ascending, then `swaps` random transpositions.
    NearlySorted {
        /// Number of random transpositions applied to the sorted sequence.
        swaps: usize,
    },
    /// Keys drawn from only `distinct` different values.
    FewDistinct {
        /// Number of distinct key values.
        distinct: usize,
    },
    /// Ascending first half, descending second half (already bitonic).
    OrganPipe,
    /// All keys equal; ordering is decided purely by the secondary key.
    Constant,
}

impl Distribution {
    /// All distributions exercised by the data-dependence experiment (E10).
    pub fn all_for_data_dependence() -> Vec<Distribution> {
        vec![
            Distribution::Uniform,
            Distribution::Sorted,
            Distribution::Reverse,
            Distribution::NearlySorted { swaps: 64 },
            Distribution::FewDistinct { distinct: 16 },
            Distribution::OrganPipe,
        ]
    }

    /// Short name used in reports.
    pub fn name(&self) -> String {
        match self {
            Distribution::Uniform => "uniform".into(),
            Distribution::Sorted => "sorted".into(),
            Distribution::Reverse => "reverse".into(),
            Distribution::NearlySorted { swaps } => format!("nearly-sorted({swaps})"),
            Distribution::FewDistinct { distinct } => format!("few-distinct({distinct})"),
            Distribution::OrganPipe => "organ-pipe".into(),
            Distribution::Constant => "constant".into(),
        }
    }
}

impl std::str::FromStr for Distribution {
    type Err = String;

    /// Parse the textual form produced by [`Distribution::name`], so
    /// command lines like `--dist uniform` or `--dist nearly-sorted(64)`
    /// round-trip. The parameterized variants also accept their bare names
    /// (`nearly-sorted` → 64 swaps, `few-distinct` → 16 keys).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (base, param) = match (s.find('('), s.strip_suffix(')')) {
            (Some(open), Some(stripped)) => {
                let value: usize = stripped[open + 1..]
                    .parse()
                    .map_err(|e| format!("invalid parameter in {s:?}: {e}"))?;
                (&s[..open], Some(value))
            }
            (None, None) => (s, None),
            _ => return Err(format!("mismatched parentheses in {s:?}")),
        };
        match (base, param) {
            ("uniform", None) => Ok(Distribution::Uniform),
            ("sorted", None) => Ok(Distribution::Sorted),
            ("reverse", None) => Ok(Distribution::Reverse),
            ("organ-pipe", None) => Ok(Distribution::OrganPipe),
            ("constant", None) => Ok(Distribution::Constant),
            ("nearly-sorted", swaps) => Ok(Distribution::NearlySorted {
                swaps: swaps.unwrap_or(64),
            }),
            ("few-distinct", distinct) => Ok(Distribution::FewDistinct {
                distinct: distinct.unwrap_or(16),
            }),
            _ => Err(format!(
                "unknown distribution {s:?} (expected uniform | sorted | reverse | \
                 nearly-sorted[(swaps)] | few-distinct[(keys)] | organ-pipe | constant)"
            )),
        }
    }
}

/// Generate `n` value/pointer pairs with the given distribution and seed.
///
/// The `id` of the element at position `i` is `i`.
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<f32> = match dist {
        Distribution::Uniform => (0..n).map(|_| rng.gen::<f32>()).collect(),
        Distribution::Sorted => {
            let mut keys: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
            keys.sort_by(f32::total_cmp);
            keys
        }
        Distribution::Reverse => {
            let mut keys: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
            keys.sort_by(|a, b| b.total_cmp(a));
            keys
        }
        Distribution::NearlySorted { swaps } => {
            let mut keys: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
            keys.sort_by(f32::total_cmp);
            if n >= 2 {
                for _ in 0..swaps {
                    let i = rng.gen_range(0..n);
                    let j = rng.gen_range(0..n);
                    keys.swap(i, j);
                }
            }
            keys
        }
        Distribution::FewDistinct { distinct } => {
            let pool: Vec<f32> = (0..distinct.max(1)).map(|_| rng.gen::<f32>()).collect();
            (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
        }
        Distribution::OrganPipe => {
            let half = n / 2;
            let mut keys = Vec::with_capacity(n);
            for i in 0..half {
                keys.push(i as f32);
            }
            for i in 0..(n - half) {
                keys.push((n - half - i) as f32);
            }
            keys
        }
        Distribution::Constant => vec![0.5f32; n],
    };
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| Value::new(key, i as u32))
        .collect()
}

/// Generate the paper's main workload: `n` uniform random value/pointer
/// pairs.
pub fn uniform(n: usize, seed: u64) -> Vec<Value> {
    generate(Distribution::Uniform, n, seed)
}

/// Generate a random *bitonic* sequence of length `n` (a power of two) by
/// sorting two random halves in opposite directions. Used by the merge
/// tests.
pub fn bitonic(n: usize, seed: u64) -> Vec<Value> {
    assert!(
        n.is_power_of_two(),
        "bitonic workload length must be a power of two"
    );
    let mut values = uniform(n, seed);
    let half = n / 2;
    values[..half].sort();
    values[half..].sort_by(|a, b| b.cmp(a));
    values
}

/// Generate a random permutation of `0..n` as keys (useful when exact
/// integer keys make a failure easier to read).
pub fn permutation(n: usize, seed: u64) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (0..n as u32).collect();
    keys.shuffle(&mut rng);
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| Value::new(k as f32, i as u32))
        .collect()
}

/// The sequence lengths of Tables 2 and 3: `2^15 .. 2^20`.
pub fn paper_sequence_lengths() -> Vec<usize> {
    (15..=20).map(|e| 1usize << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = uniform(1024, 42);
        let b = uniform(1024, 42);
        let c = uniform(1024, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_positions() {
        for dist in Distribution::all_for_data_dependence() {
            let v = generate(dist, 257, 7);
            assert_eq!(v.len(), 257);
            for (i, x) in v.iter().enumerate() {
                assert_eq!(x.id, i as u32, "{}", dist.name());
            }
        }
    }

    #[test]
    fn sorted_and_reverse_are_monotone() {
        let s = generate(Distribution::Sorted, 500, 1);
        assert!(s.windows(2).all(|w| w[0].key <= w[1].key));
        let r = generate(Distribution::Reverse, 500, 1);
        assert!(r.windows(2).all(|w| w[0].key >= w[1].key));
    }

    #[test]
    fn few_distinct_has_few_distinct_keys() {
        let v = generate(Distribution::FewDistinct { distinct: 4 }, 1000, 3);
        let mut keys: Vec<u32> = v.iter().map(|x| x.key.to_bits()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() <= 4);
    }

    #[test]
    fn constant_distribution_has_one_key() {
        let v = generate(Distribution::Constant, 64, 0);
        assert!(v.iter().all(|x| x.key == 0.5));
    }

    #[test]
    fn organ_pipe_rises_then_falls() {
        let v = generate(Distribution::OrganPipe, 64, 0);
        assert!(v[..32].windows(2).all(|w| w[0].key <= w[1].key));
        assert!(v[32..].windows(2).all(|w| w[0].key >= w[1].key));
    }

    #[test]
    fn bitonic_workload_is_bitonic() {
        let v = bitonic(256, 9);
        // First half ascending, second half descending.
        assert!(v[..128].windows(2).all(|w| w[0] <= w[1]));
        assert!(v[128..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bitonic_rejects_non_power_of_two() {
        let _ = bitonic(100, 0);
    }

    #[test]
    fn permutation_contains_every_key_once() {
        let v = permutation(128, 5);
        let mut keys: Vec<u32> = v.iter().map(|x| x.key as u32).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn paper_lengths_match_tables() {
        assert_eq!(
            paper_sequence_lengths(),
            vec![32768, 65536, 131072, 262144, 524288, 1048576]
        );
    }

    #[test]
    fn nearly_sorted_is_close_to_sorted() {
        let v = generate(Distribution::NearlySorted { swaps: 8 }, 4096, 11);
        let inversions_adjacent = v.windows(2).filter(|w| w[0].key > w[1].key).count();
        // 8 transpositions can create at most 32 adjacent inversions.
        assert!(inversions_adjacent <= 32);
    }

    #[test]
    fn distribution_names_round_trip_through_from_str() {
        let mut all = Distribution::all_for_data_dependence();
        all.push(Distribution::Constant);
        for dist in all {
            let parsed: Distribution = dist.name().parse().unwrap();
            assert_eq!(parsed, dist, "{}", dist.name());
        }
    }

    #[test]
    fn from_str_accepts_bare_parameterized_names_with_defaults() {
        assert_eq!(
            "nearly-sorted".parse::<Distribution>().unwrap(),
            Distribution::NearlySorted { swaps: 64 }
        );
        assert_eq!(
            "few-distinct".parse::<Distribution>().unwrap(),
            Distribution::FewDistinct { distinct: 16 }
        );
        assert_eq!(
            " uniform ".parse::<Distribution>().unwrap(),
            Distribution::Uniform
        );
    }

    #[test]
    fn from_str_rejects_unknown_and_malformed_inputs() {
        assert!("gaussian".parse::<Distribution>().is_err());
        assert!("nearly-sorted(".parse::<Distribution>().is_err());
        assert!("nearly-sorted(x)".parse::<Distribution>().is_err());
        assert!("uniform(3)".parse::<Distribution>().is_err());
    }

    #[test]
    fn distribution_names_are_stable() {
        assert_eq!(Distribution::Uniform.name(), "uniform");
        assert_eq!(
            Distribution::NearlySorted { swaps: 3 }.name(),
            "nearly-sorted(3)"
        );
        assert_eq!(
            Distribution::FewDistinct { distinct: 2 }.name(),
            "few-distinct(2)"
        );
    }
}
