//! Columnar batches for order-by workloads.
//!
//! An order-by query sorts the *rows* of a table by one column without
//! materialising sorted copies of every other column: the engine sorts
//! `(column key, row index)` pairs and returns the row permutation. This
//! module provides the minimal deterministic columnar inputs that
//! workload needs — typed columns of the widths the 64-bit codec layer
//! can pair with a `u32` row index (`sortsvc::keys` packs the key into
//! the high bits and the row index into the low bits, so the engines see
//! all-distinct 64-bit keys).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One typed column of a [`ColumnBatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// 32-bit float keys (the paper's native key type).
    F32(Vec<f32>),
    /// Signed 32-bit integer keys (sign-flip codec).
    I32(Vec<i32>),
    /// Unsigned 32-bit integer keys (identity codec).
    U32(Vec<u32>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::F32(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::U32(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short type name used in reports.
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::F32(_) => "f32",
            Column::I32(_) => "i32",
            Column::U32(_) => "u32",
        }
    }
}

/// A named collection of equal-length typed columns.
///
/// ```
/// use workloads::columnar::ColumnBatch;
///
/// let batch = ColumnBatch::generate(100, 7);
/// assert_eq!(batch.rows(), 100);
/// assert!(batch.column("price").is_some());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<(String, Column)>,
}

impl ColumnBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: add a named column. Panics if its length disagrees
    /// with the columns already present.
    pub fn with_column(mut self, name: impl Into<String>, column: Column) -> Self {
        if let Some((first, existing)) = self.columns.first() {
            assert_eq!(
                existing.len(),
                column.len(),
                "column length mismatch vs {first:?}"
            );
        }
        self.columns.push((name.into(), column));
        self
    }

    /// Number of rows (0 for an empty batch).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Look a column up by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Iterate over `(name, column)` pairs in insertion order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// A deterministic three-column batch (`price: f32`, `delta: i32`,
    /// `ts: u32`) exercising every codec the order-by path supports.
    /// Values repeat across rows on purpose — duplicate keys are the
    /// interesting case for a permutation sort.
    pub fn generate(rows: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let price: Vec<f32> = (0..rows)
            .map(|_| (rng.gen_range(0..10_000) as f32) / 100.0)
            .collect();
        let delta: Vec<i32> = (0..rows).map(|_| rng.gen_range(-500..500)).collect();
        let ts: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..1 << 20)).collect();
        ColumnBatch::new()
            .with_column("price", Column::F32(price))
            .with_column("delta", Column::I32(delta))
            .with_column("ts", Column::U32(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_batches_are_deterministic_and_rectangular() {
        let a = ColumnBatch::generate(64, 3);
        let b = ColumnBatch::generate(64, 3);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 64);
        assert_eq!(a.width(), 3);
        for (_, col) in a.columns() {
            assert_eq!(col.len(), 64);
        }
        assert_ne!(a, ColumnBatch::generate(64, 4));
    }

    #[test]
    fn column_lookup_and_type_names() {
        let batch = ColumnBatch::generate(8, 0);
        assert_eq!(batch.column("price").unwrap().type_name(), "f32");
        assert_eq!(batch.column("delta").unwrap().type_name(), "i32");
        assert_eq!(batch.column("ts").unwrap().type_name(), "u32");
        assert!(batch.column("missing").is_none());
        assert!(!batch.column("ts").unwrap().is_empty());
        assert_eq!(ColumnBatch::new().rows(), 0);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn ragged_columns_are_rejected() {
        let _ = ColumnBatch::new()
            .with_column("a", Column::U32(vec![1, 2, 3]))
            .with_column("b", Column::U32(vec![1]));
    }
}
