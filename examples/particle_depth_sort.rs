//! Particle-engine depth sorting — the `[KSW04]` (Uberflow) scenario the
//! paper cites as a motivating GPU application.
//!
//! A particle system renders transparent particles back-to-front, so every
//! frame the particles must be sorted by their distance to the camera. The
//! data already lives in GPU memory, which is exactly the situation the
//! paper's timings assume ("the input data is given in GPU memory"). Frames
//! are temporally coherent: between frames the depth order changes only a
//! little — a property adaptive bitonic sorting handles with the *same*
//! cost as a random permutation (its work is data independent), while the
//! CPU quicksort baseline speeds up on nearly-sorted data but pays the
//! transfer overhead of Section 8 twice per frame.
//!
//! ```text
//! cargo run --release --example particle_depth_sort [-- <particles> <frames>]
//! ```

use gpu_abisort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A particle with a position; the depth key is the distance to the camera.
#[derive(Clone, Copy)]
struct Particle {
    position: [f32; 3],
    velocity: [f32; 3],
}

fn depth_key(p: &Particle, camera: [f32; 3]) -> f32 {
    let dx = p.position[0] - camera[0];
    let dy = p.position[1] - camera[1];
    let dz = p.position[2] - camera[2];
    // Negative squared distance: larger distance sorts first (back to front)
    // when sorting ascending.
    -(dx * dx + dy * dy + dz * dz)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_particles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 16);
    let frames: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("Particle depth sort: {num_particles} particles, {frames} frames\n");

    let mut rng = StdRng::seed_from_u64(7);
    let mut particles: Vec<Particle> = (0..num_particles)
        .map(|_| Particle {
            position: [
                rng.gen_range(-50.0..50.0),
                rng.gen_range(0.0..80.0),
                rng.gen_range(-50.0..50.0),
            ],
            velocity: [
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-1.0..0.1),
                rng.gen_range(-0.5..0.5),
            ],
        })
        .collect();
    let camera = [0.0f32, 20.0, -120.0];

    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let cpu_model = baselines::CpuSortModel::athlon_64_4200();
    let transfer = TransferModel::new(stream_arch::BusKind::PciExpressX16);

    let mut total_gpu_ms = 0.0;
    let mut total_cpu_ms = 0.0;

    for frame in 0..frames {
        // Build the key/pointer pairs for this frame.
        let keys: Vec<Value> = particles
            .iter()
            .enumerate()
            .map(|(i, p)| Value::new(depth_key(p, camera), i as u32))
            .collect();

        // GPU path: data is resident on the GPU, no transfer needed.
        let run = sorter.sort_run(&mut gpu, &keys).expect("sort failed");
        assert!(run.output.windows(2).all(|w| w[0] <= w[1]));

        // CPU path: transfer down, quicksort, transfer back.
        let (_, cpu_stats) = CpuSorter.sort(&keys);
        let cpu_ms = cpu_model.time_ms(&cpu_stats) + transfer.round_trip_ms(num_particles, 8);

        total_gpu_ms += run.sim_time.total_ms;
        total_cpu_ms += cpu_ms;
        println!(
            "frame {frame}: GPU-ABiSort {:>7.2} ms   CPU sort + transfer {:>7.2} ms",
            run.sim_time.total_ms, cpu_ms
        );

        // Advance the simulation a little; the next frame is nearly sorted.
        for p in &mut particles {
            for d in 0..3 {
                p.position[d] += p.velocity[d];
            }
        }
    }

    println!(
        "\ntotal simulated time over {frames} frames: GPU-ABiSort {total_gpu_ms:.1} ms, CPU {total_cpu_ms:.1} ms ({:.2}x)",
        total_cpu_ms / total_gpu_ms
    );
}
