//! Networked sorting service demo: the framed-TCP front-end end to end.
//!
//! Starts a [`SortServer`] on an ephemeral loopback port, connects a few
//! buffering [`SortClient`]s from separate threads, pipelines a seeded
//! request mix through them, and prints the server's wire + service
//! statistics. Everything a production deployment would split across
//! machines runs here in one process — the bytes on the loopback socket
//! are exactly the protocol documented in `docs/PROTOCOL.md`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example net_sort_service [-- <clients> [<jobs-per-client>]]
//! ```

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::net::JobReply;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One client connection: submit `jobs` requests pipelined, wait for every
/// reply, and return (completed, rejected, total round-trip ms).
fn run_client(addr: SocketAddr, tenant: u32, jobs: usize) -> (usize, usize, f64) {
    let requests = RequestMix::connection_driven(jobs).generate(2006 ^ ((tenant as u64) << 32));
    let mut client = SortClient::connect_with(
        addr,
        ClientConfig {
            tenant,
            ..ClientConfig::default()
        },
    )
    .expect("connect to loopback server");

    let started = Instant::now();
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| client.submit(r.values).expect("submit job"))
        .collect();
    client.flush().expect("flush buffered submissions");

    let (mut completed, mut rejected) = (0usize, 0usize);
    for ticket in tickets {
        match ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("job went unanswered")
        {
            JobReply::Sorted(values) => {
                assert!(
                    values.windows(2).all(|w| w[0] <= w[1]),
                    "wire result must come back sorted"
                );
                completed += 1;
            }
            JobReply::Rejected { code, .. } => {
                eprintln!("  tenant {tenant}: job rejected with {code}");
                rejected += 1;
            }
        }
    }
    (completed, rejected, started.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let jobs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    let server =
        SortServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind loopback server");
    let addr = server.local_addr();
    println!("sort server listening on {addr} ({clients} clients × {jobs} jobs)\n");

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| scope.spawn(move || run_client(addr, c as u32, jobs)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    for (tenant, (completed, rejected, wall_ms)) in outcomes.iter().enumerate() {
        println!(
            "tenant {tenant}: {completed} completed, {rejected} rejected in {wall_ms:.1} ms wall"
        );
    }
    let total: usize = outcomes.iter().map(|(c, r, _)| c + r).sum();
    assert_eq!(total, clients * jobs, "every job must be answered");

    let stats = server.shutdown();
    println!("\nserver statistics:");
    println!(
        "  connections         : {} accepted, {} peak simultaneous",
        stats.connections_accepted, stats.peak_connections
    );
    println!(
        "  frames              : {} received, {} sent",
        stats.frames_received, stats.frames_sent
    );
    println!(
        "  micro-batches       : {} ({} service batches)",
        stats.micro_batches, stats.service.batches
    );
    println!(
        "  jobs                : {} completed, {} rejected ({} wire-level)",
        stats.service.jobs_completed, stats.service.jobs_rejected, stats.wire_rejects
    );
    println!("  elements sorted     : {}", stats.service.elements_sorted);
    println!(
        "  service latency     : p50 {:.2} / p99 {:.2} ms (simulated)",
        stats.service.latency_p50_ms, stats.service.latency_p99_ms
    );
    println!(
        "  engine mix          : {} cpu-quicksort, {} gpu-abisort, {} terasort",
        stats.service.cpu_jobs, stats.service.gpu_jobs, stats.service.tera_jobs
    );
    assert_eq!(
        stats.service.jobs_completed,
        outcomes.iter().map(|(c, _, _)| c).sum::<usize>(),
        "server and clients must agree on the completed-job count"
    );
}
