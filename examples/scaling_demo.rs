//! Scaling demonstration: stream-operation counts and simulated time as a
//! function of the number of stream processor units `p` and of the problem
//! size `n` (the claims of Sections 5.4 and the abstract).
//!
//! ```text
//! cargo run --release --example scaling_demo [-- <log2_n>]
//! ```

use gpu_abisort::prelude::*;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let n = 1usize << log_n;

    println!("GPU-ABiSort scaling demo, n = 2^{log_n} = {n}\n");
    let input = workloads::uniform(n, 1);

    // --- Stream operations: O(log³ n) vs O(log² n) -----------------------
    println!("stream operations per variant (steps counted as in Section 5.4):");
    for (name, config) in [
        ("sequential phases (Section 5.3)", SortConfig::unoptimized()),
        (
            "overlapped stages (Section 5.4)",
            SortConfig::unoptimized().with_overlapped_steps(true),
        ),
        ("fully optimized (Section 7)", SortConfig::default()),
    ] {
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let run = GpuAbiSorter::new(config)
            .sort_run(&mut gpu, &input)
            .unwrap();
        println!(
            "  {name:<34} steps = {:>6}   launches = {:>6}   simulated = {:>8.2} ms",
            run.counters.steps, run.counters.launches, run.sim_time.total_ms
        );
    }

    // --- Scaling with the number of processor units ----------------------
    println!("\nsimulated time vs number of stream processor units p (fixed n):");
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut base_ms = None;
    for p in [1usize, 2, 4, 8, 16, 24, 32, 64] {
        let profile = GpuProfile::geforce_7800().with_units(p);
        let mut gpu = StreamProcessor::new(profile);
        let run = sorter.sort_run(&mut gpu, &input).unwrap();
        let ms = run.sim_time.total_ms;
        let speedup = base_ms.get_or_insert(ms);
        println!(
            "  p = {p:>3}: {ms:>9.2} ms   speed-up over p=1: {:>5.2}x",
            *speedup / ms
        );
    }
    println!("\n(The speed-up saturates once the per-stream-operation overhead");
    println!(" dominates — the p ≤ n/log n limit discussed in the abstract.)");
}
