//! Sharded multi-device sorting demo: one large job spread over a pool of
//! simulated stream processors, with the phase breakdown (partition /
//! shard sorts / inter-device gather / device tournament merge) and the
//! scaling over the device count.
//!
//! ```bash
//! cargo run --release --example sharded_sort
//! ```

use gpu_abisort::prelude::*;
use gpu_abisort::stream_arch::DeviceLink;

fn pool(devices: usize) -> Vec<StreamProcessor> {
    (0..devices)
        .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
        .collect()
}

fn main() {
    let n = 1 << 18;
    let input = workloads::uniform(n, 2006);
    // A bridge-connected multi-GPU rig: peer hops between the devices.
    let sorter = ShardedSorter::new(ShardedConfig {
        link: DeviceLink::pcie_peer(),
        ..ShardedConfig::default()
    });

    println!("sharded GPU-ABiSort, uniform job of {n} value/pointer pairs\n");
    println!(
        "{:>8} | {:>10} | {:>10} | {:>9} | {:>9} | {:>9} | {:>8} | {:>6}",
        "devices", "sim [ms]", "speedup", "partition", "sorts", "gather", "merge", "skew"
    );

    let mut base_ms = 0.0;
    for devices in [1usize, 2, 4, 8] {
        let run = sorter
            .sort_run(&mut pool(devices), &input)
            .expect("sharded sort failed");
        assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
        if devices == 1 {
            base_ms = run.sim_ms;
        }
        let max_sort = run.shard_sort_ms.iter().copied().fold(0.0, f64::max);
        println!(
            "{:>8} | {:>10.2} | {:>9.2}x | {:>9.2} | {:>9.2} | {:>9.2} | {:>8.2} | {:>6.3}",
            devices,
            run.sim_ms,
            base_ms / run.sim_ms,
            run.partition_ms,
            max_sort,
            run.transfer_ms,
            run.merge_ms,
            run.skew,
        );
    }

    println!(
        "\nThe shard sorts run concurrently (one pooled StreamProcessor per \
         device), the sorted shards hop to device 0 over the inter-device \
         link, and the paper's own merge machinery recombines them there — \
         the recursion levels above the shard blocks, a tournament of \
         pairwise adaptive bitonic merges."
    );
}
