//! Sorting-as-a-service demo: serve a seeded, small-job-heavy request mix
//! through the batched sorting service and show (a) the calibrated
//! CPU/GPU policy crossover in action and (b) batched coalescing beating
//! naive one-job-per-launch submission on simulated throughput.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sort_service [-- <jobs> [<dist>]]
//! ```
//!
//! The optional second argument is a key distribution accepted by
//! `workloads::Distribution::from_str` (`uniform`, `sorted`,
//! `nearly-sorted(64)`, …) that overrides the mix's distribution pool.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::ServiceReport;

fn jobs_from_mix(mix: &workloads::RequestMix, seed: u64) -> Vec<SortJob> {
    SortJob::from_requests(mix.generate(seed))
}

fn print_report(label: &str, report: &ServiceReport) {
    let m = &report.metrics;
    println!("{label}:");
    println!(
        "  completed/rejected  : {:>8} / {}",
        m.jobs_completed, m.jobs_rejected
    );
    println!("  batches             : {:>8}", m.batches);
    println!("  jobs per batch      : {:>10.1}", m.mean_jobs_per_batch);
    println!(
        "  batch occupancy     : {:>9.0}%",
        100.0 * m.mean_batch_occupancy
    );
    println!(
        "  throughput          : {:>10.1} kelem/s (simulated)",
        m.throughput_kelems_per_s
    );
    println!(
        "  latency p50 / p99   : {:>7.2} / {:.2} ms (simulated)",
        m.latency_p50_ms, m.latency_p99_ms
    );
    println!(
        "  engine mix          : {} cpu-quicksort, {} gpu-abisort, {} terasort",
        m.cpu_jobs, m.gpu_jobs, m.tera_jobs
    );
    println!(
        "  device utilization  : {:>9.0}%\n",
        100.0 * m.device_utilization
    );
}

fn main() {
    let jobs_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(192);
    let mut mix = workloads::RequestMix::small_job_heavy(jobs_n);
    if let Some(dist_arg) = std::env::args().nth(2) {
        let dist: Distribution = dist_arg
            .parse()
            .unwrap_or_else(|e| panic!("bad --dist argument: {e}"));
        mix.distributions = vec![dist];
    }

    println!(
        "sort service demo: {jobs_n} jobs, sizes {}..{}, {} tenants\n",
        mix.size_classes.iter().map(|c| c.min).min().unwrap(),
        mix.size_classes.iter().map(|c| c.max).max().unwrap(),
        mix.tenants
    );

    // --- Policy-driven service ------------------------------------------
    let service = SortService::new(ServiceConfig::default());
    println!(
        "calibrated policy crossover: CPU quicksort below {} keys, GPU-ABiSort above\n",
        service.policy().crossover()
    );
    let report = service
        .process(jobs_from_mix(&mix, 42))
        .expect("service run failed");
    for result in &report.results {
        assert!(
            result.output.windows(2).all(|w| w[0] <= w[1]),
            "job {} came back unsorted",
            result.id
        );
    }
    print_report("policy-driven service (coalesced)", &report);

    // --- Coalescing ablation: everything on the GPU ---------------------
    // Pinning the policy to the device isolates what coalescing buys: the
    // per-stream-operation launch overhead is paid once per batch instead
    // of once per job (Section 3.1 economics).
    let all_gpu = |coalescing: bool| {
        SortService::with_policy(
            ServiceConfig {
                coalescing,
                ..ServiceConfig::default()
            },
            service.policy().clone().with_crossover(0),
        )
    };
    let coalesced = all_gpu(true)
        .process(jobs_from_mix(&mix, 42))
        .expect("coalesced run failed");
    let naive = all_gpu(false)
        .process(jobs_from_mix(&mix, 42))
        .expect("naive run failed");
    print_report("all-GPU, coalesced batches", &coalesced);
    print_report("all-GPU, one job per launch", &naive);

    let speedup = coalesced.metrics.throughput_kelems_per_s / naive.metrics.throughput_kelems_per_s;
    println!("coalescing speedup over one-job-per-launch: {speedup:.1}x (simulated throughput)");
    assert!(
        speedup > 1.0,
        "coalescing must amortize launch overhead on a small-job-heavy mix"
    );
}
