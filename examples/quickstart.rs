//! Quickstart: sort a million value/pointer pairs on the simulated GPU and
//! compare against the CPU baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [-- <num_elements>]
//! ```

use gpu_abisort::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 17);

    println!("GPU-ABiSort quickstart: sorting {n} value/pointer pairs\n");
    let input = workloads::uniform(n, 42);

    // --- GPU-ABiSort on the simulated GeForce 7800 -----------------------
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let run = sorter.sort_run(&mut gpu, &input).expect("sort failed");
    assert!(
        run.output.windows(2).all(|w| w[0] <= w[1]),
        "output not sorted"
    );

    println!("GPU-ABiSort ({}):", sorter.config().describe());
    println!("  simulated time      : {:>10.2} ms", run.sim_time.total_ms);
    println!(
        "  host wall-clock time: {:>10.2} ms",
        run.wall_time.as_secs_f64() * 1e3
    );
    println!(
        "  stream operations   : {:>10}",
        run.counters.effective_ops(true)
    );
    println!(
        "  kernel instances    : {:>10}",
        run.counters.kernel_instances
    );
    println!("  comparisons         : {:>10}", run.counters.comparisons);
    println!(
        "  texture cache hits  : {:>9.1} %",
        100.0 * run.counters.cache.hit_rate()
    );

    // --- CPU baseline -----------------------------------------------------
    let cpu = CpuSorter;
    let started = std::time::Instant::now();
    let (cpu_out, cpu_stats) = cpu.sort(&input);
    let cpu_wall = started.elapsed();
    assert_eq!(cpu_out, run.output);

    let cpu_model = baselines::CpuSortModel::athlon_64_4200();
    println!("\nCPU quicksort baseline ({}):", cpu_model.name);
    println!(
        "  simulated time      : {:>10.2} ms",
        cpu_model.time_ms(&cpu_stats)
    );
    println!(
        "  host wall-clock time: {:>10.2} ms",
        cpu_wall.as_secs_f64() * 1e3
    );
    println!("  comparisons         : {:>10}", cpu_stats.comparisons);

    let speedup = cpu_model.time_ms(&cpu_stats) / run.sim_time.total_ms;
    println!("\nSimulated speed-up of GPU-ABiSort over the CPU sort: {speedup:.2}x");
}
