//! PRAM comparison: the Section-2.1 context of the paper made concrete.
//!
//! Runs the original Bilardi–Nicolau adaptive bitonic sort, Batcher's
//! bitonic sorting network and a rank-based parallel merge sort on the
//! explicit PRAM simulator and prints the quantities the paper's
//! related-work discussion is about: parallel steps, total comparisons,
//! the memory model each algorithm actually needs, and the Brent-scheduled
//! speed-up with `p = n / log n` processors.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pram_comparison [-- <log2_n>]
//! ```

use gpu_abisort::pram::sorters::{abisort_pram, bitonic_network, oem_network, rank_merge};
use gpu_abisort::pram::PramModel;
use gpu_abisort::prelude::*;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let n = 1usize << log_n;
    let p = (n / log_n as usize).max(1) as u64;
    let input = workloads::uniform(n, 2006);

    println!("PRAM sorters on n = 2^{log_n} = {n} values (p = n / log n = {p} processors)\n");
    println!(
        "{:<28} {:>8} {:>12} {:>14} {:>10} {:>12}",
        "algorithm", "steps", "comparisons", "Brent time(p)", "speed-up", "model"
    );

    let print_run = |name: &str, run: &gpu_abisort::pram::SortRun| {
        assert!(
            run.output.windows(2).all(|w| w[0] <= w[1]),
            "{name}: not sorted"
        );
        let model = if run.stats.conflicts(PramModel::Erew) == 0 {
            "EREW"
        } else {
            "CREW"
        };
        println!(
            "{:<28} {:>8} {:>12} {:>14} {:>9.1}x {:>12}",
            name,
            run.stats.num_steps(),
            run.stats.comparisons(),
            run.stats.brent_time(p),
            run.stats.speedup(p),
            model,
        );
    };

    let abi = abisort_pram::sort(&input).expect("adaptive bitonic sort failed");
    print_run("adaptive bitonic (BN89)", &abi);

    let abi_seq =
        abisort_pram::sort_with_schedule(&input, abisort_pram::Schedule::SequentialStages)
            .expect("adaptive bitonic sort failed");
    print_run("adaptive bitonic, seq. stages", &abi_seq);

    let net = bitonic_network::sort(&input).expect("bitonic network failed");
    print_run("Batcher bitonic network", &net);

    let oem = oem_network::sort(&input).expect("odd-even merge network failed");
    print_run("odd-even merge network", &oem);

    let rank = rank_merge::sort(&input).expect("rank merge sort failed");
    print_run("rank-based merge sort", &rank);

    println!(
        "\nThe adaptive bitonic sort is the only algorithm that is EREW, runs in O(log² n)\n\
         steps ({} = log² n here) and performs O(n log n) comparisons ({} < 2·n·log n = {}).",
        log_n * log_n,
        abi.stats.comparisons(),
        2 * n as u64 * log_n as u64,
    );
    println!(
        "The bitonic network pays the extra log-factor of work ({:.2}x the comparisons),\n\
         which is exactly the gap the GPU-ABiSort paper closes on stream hardware.",
        net.stats.comparisons() as f64 / abi.stats.comparisons() as f64
    );
}
