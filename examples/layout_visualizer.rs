//! Print the output-stream layout tables of the paper's Figures 4–7 and
//! the bitonic-merge walkthrough of Figure 1.
//!
//! ```text
//! cargo run --example layout_visualizer [-- <figure-number>]
//! ```
//!
//! Without an argument all figures are printed.

use abisort::stream_sort::layout_plan::{figure_table_overlapped, figure_table_sequential};
use abisort::{adaptive_bitonic_merge, MergeVariant};
use stream_arch::Value;

fn figure1() {
    println!("Figure 1 — adaptive bitonic merge of 16 values");
    println!("==============================================");
    let keys = [
        0.0, 2.0, 3.0, 5.0, 7.0, 10.0, 11.0, 13.0, 15.0, 14.0, 12.0, 9.0, 8.0, 6.0, 4.0, 1.0,
    ];
    let input: Vec<Value> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Value::new(k, i as u32))
        .collect();
    println!(
        "input (bitonic):  {}",
        keys.map(|k| format!("{k:>2}")).join(" ")
    );
    let (merged, stats) = adaptive_bitonic_merge(&input, true, MergeVariant::Simplified);
    println!(
        "merged (sorted):  {}",
        merged
            .iter()
            .map(|v| format!("{:>2}", v.key))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "comparisons: {} (= 2n − log n − 2 = {})\n",
        stats.comparisons,
        2 * 16 - 4 - 2
    );
}

fn main() {
    let which: Option<u32> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let all = which.is_none();
    let show = |f: u32| all || which == Some(f);

    if show(1) {
        figure1();
    }
    if show(2) || show(3) {
        println!("Figures 2/3 — kernel operation traces are exercised by the");
        println!("integration test `tests/stream_merge_traces.rs`.\n");
    }
    if show(4) {
        println!("Figure 4 — output stream layout, last level (j = 4) of sorting n = 2^4 values");
        println!("{}", figure_table_sequential(4, 4).render());
    }
    if show(5) {
        println!("Figure 5 — layout for level j = 4 of sorting n = 2^5 values (two trees)");
        println!("{}", figure_table_sequential(4, 5).render());
    }
    if show(6) {
        println!("Figure 6 — the same merge with partially overlapped stages (Section 5.4)");
        println!("{}", figure_table_overlapped(4, 5, 0).render());
    }
    if show(7) {
        println!(
            "Figure 7 — merging 2^6 values when the optimized 2^4 bitonic merge runs afterwards"
        );
        println!("{}", figure_table_overlapped(6, 6, 4).render());
    }
}
