//! Typed-sort quick-start: submit native-typed keys — floats with NaN,
//! signed integers, composite tuples, short strings — through the
//! order-preserving codec layer, and run the query-shaped job kinds the
//! typed API adds: top-k, order-by over a columnar batch, and percentile
//! probes answered from a histogram instead of a sort.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example typed_sort [-- <n>]
//! ```

use gpu_abisort::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    // One service (calibrated once) behind the typed client.
    let client = TypedSortClient::new(ServiceConfig::default());

    // --- floats, including the values plain `sort_by(partial_cmp)` chokes on
    let mut floats: Vec<f32> = workloads::uniform(n, 42).iter().map(|v| v.key).collect();
    floats.extend([f32::NAN, -0.0, 0.0, f32::NEG_INFINITY]);
    let sorted = client.submit_keys(&floats).expect("f32 sort");
    println!(
        "sorted {} f32 keys ({} distinct) on {} in {:.3} ms (simulated); first = {}, last = {:?}",
        sorted.report.total,
        sorted.report.distinct,
        sorted.report.engine.name(),
        sorted.report.latency_ms,
        sorted.keys[0],
        sorted.keys.last().unwrap(), // NaN sorts above +inf in IEEE total order
    );

    // --- signed integers: the sign-flip codec keeps negatives first
    let ints: Vec<i64> = floats
        .iter()
        .take(n)
        .map(|f| (f.to_bits() as i64) - (1 << 31))
        .collect();
    let sorted = client.submit_keys(&ints).expect("i64 sort");
    println!(
        "sorted {} i64 keys: min = {}, max = {}",
        sorted.report.total,
        sorted.keys[0],
        sorted.keys.last().unwrap()
    );

    // --- composite keys: lexicographic (bucket, score) without a comparator
    let pairs: Vec<(i32, u32)> = ints
        .iter()
        .map(|&i| ((i % 7) as i32, (i.unsigned_abs() % 1_000) as u32))
        .collect();
    let sorted = client.submit_keys(&pairs).expect("tuple sort");
    println!(
        "sorted {} (i32, u32) tuples: first bucket = {}, last bucket = {}",
        sorted.report.total,
        sorted.keys[0].0,
        sorted.keys.last().unwrap().0
    );

    // --- strings: the 8-byte prefix codec rides the same engines
    let words = ["pear", "apple", "quince", "fig", "apple", "banana"];
    let keys: Vec<StrKey> = words
        .iter()
        .map(|w| StrKey::new(w).expect("short ASCII"))
        .collect();
    let sorted = client.submit_keys(&keys).expect("string sort");
    let sorted_words: Vec<&str> = sorted.keys.iter().map(StrKey::as_str).collect();
    println!("sorted strings: {sorted_words:?}");

    // --- top-k: the bitonic recursion stops early instead of sorting n
    let k = 8;
    let top = client.submit_top_k(&floats, k).expect("top-k");
    println!(
        "top-{k} of {} floats on {} in {:.3} ms (simulated): {:?}",
        top.report.total,
        top.report.engine.name(),
        top.report.latency_ms,
        top.keys
    );

    // --- order-by: a permutation over a columnar batch, ties kept stable
    let batch = workloads::ColumnBatch::generate(n, 7);
    let order = client.order_by(&batch, "price").expect("order-by");
    println!(
        "order-by \"price\" over {} rows: first row index = {}, metrics: {} order-by jobs",
        batch.rows(),
        order.permutation[0],
        order.report.metrics.orderby_jobs
    );

    // --- percentiles: answered from a streaming histogram, no sort at all.
    // The log-bucketed histogram resolves keys that span decades (counts,
    // latencies, prices in cents — see docs/KEYS.md for the resolution
    // guarantee), so probe a latency-shaped integer domain.
    let micros: Vec<u32> = floats
        .iter()
        .take(n)
        .map(|f| (f * f * f * 1_000_000.0) as u32 + 50)
        .collect();
    let pct = client
        .submit_percentiles(&micros, &[0.5, 0.99])
        .expect("percentiles");
    println!(
        "latency p50 ≈ {} µs, p99 ≈ {} µs on {} (histogram pass, {:.3} ms simulated)",
        pct.keys[0],
        pct.keys[1],
        pct.report.engine.name(),
        pct.report.latency_ms
    );
}
