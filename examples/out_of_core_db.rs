//! Out-of-core database sorting: the GPUTeraSort scenario of Section 2.2.
//!
//! A table of wide records (10-byte keys, 100-byte rows) larger than the
//! in-core budget is sorted by the hybrid pipeline — reader → key
//! generator → GPU-ABiSort → reorder → writer per run, then a CPU
//! multi-way merge — on a simulated RAID array, and the same pipeline is
//! repeated with the GPUSort bitonic network and a pure-CPU quicksort as
//! the in-core sorter.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example out_of_core_db [-- <num_records> <run_size>]
//! ```

use gpu_abisort::prelude::*;
use gpu_abisort::terasort::record;

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let run_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16_384);

    println!(
        "Out-of-core sort of {records} wide records ({} MB on disk), run size {run_size}\n",
        records as u64 * 100 / 1_000_000
    );
    let data = record::generate(records, 7);

    println!(
        "{:<18} {:>5} {:>12} {:>10} {:>10} {:>11} {:>11}",
        "in-core sorter", "runs", "run IO [ms]", "GPU [ms]", "CPU [ms]", "merge [ms]", "total [ms]"
    );

    for core_sorter in [
        CoreSorter::GpuAbiSort(SortConfig::default()),
        CoreSorter::GpuBitonicNetwork,
        CoreSorter::CpuQuicksort,
    ] {
        let mut disk = SimulatedDisk::new(DiskProfile::raid_2006());
        let input = disk.create("orders");
        disk.append(input, &data);

        let config = TeraSortConfig {
            run_size,
            core_sorter,
            gpu_profile: GpuProfile::geforce_7800(),
            ..TeraSortConfig::default()
        };
        let report = TeraSorter::new(config)
            .sort(&mut disk, input)
            .expect("out-of-core sort failed");

        let sorted = disk.read_all(report.output);
        assert!(record::is_sorted(&sorted), "output not sorted");
        assert!(record::is_permutation(&data, &sorted), "records lost");

        println!(
            "{:<18} {:>5} {:>12.1} {:>10.1} {:>10.1} {:>11.1} {:>11.1}",
            report.core_sorter,
            report.runs,
            report.run_phase.io_ms,
            report.run_phase.gpu_ms,
            report.run_phase.cpu_ms,
            report.merge_phase.elapsed_ms,
            report.total_ms,
        );
    }

    println!(
        "\nAll three pipelines produce identical output; they differ in where the in-core\n\
         sorting time goes (GPU simulator vs CPU model) and in how well it hides behind\n\
         the disk I/O when the stages overlap."
    );
}
