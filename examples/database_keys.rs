//! Database key sorting — the GPUTeraSort-style pipeline of Section 2.2.
//!
//! A table of fixed-width records is sorted by a 32-bit key: a *key
//! generator* stage extracts (key, record-id) pairs, the GPU sorts the
//! pairs, and a *reorder* stage materialises the sorted table. The sort
//! itself is exactly the value/pointer-pair sort the paper benchmarks; this
//! example shows the end-to-end pipeline and verifies the reordered output.
//!
//! ```text
//! cargo run --release --example database_keys [-- <rows>]
//! ```

use gpu_abisort::prelude::*;
use workloads::records::RecordTable;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 16);

    println!("Database key sort: {rows} records of 28 bytes each\n");
    let table = RecordTable::generate(rows, 2024);

    // Key generator stage (CPU): extract (key, pointer) pairs.
    let keys = table.sort_keys();

    // Sort stage (simulated GPU), including the host↔device transfer of the
    // key/pointer array (Section 8).
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let sorter = GpuAbiSorter::new(SortConfig::default().with_transfer(true));
    let run = sorter.sort_run(&mut gpu, &keys).expect("sort failed");

    // Reorder stage (CPU): materialise the sorted table through the record
    // pointers.
    let reordered = table.reorder(&run.output);
    assert!(reordered.windows(2).all(|w| w[0].key <= w[1].key));
    assert_eq!(reordered.len(), rows);

    println!("sort stage (GPU-ABiSort, {}):", sorter.config().describe());
    println!(
        "  simulated time incl. transfer: {:>8.2} ms",
        run.sim_time.total_ms
    );
    println!(
        "  transfer share               : {:>8.2} ms",
        run.sim_time.breakdown.transfer_ms
    );
    println!(
        "  stream operations            : {:>8}",
        run.counters.effective_ops(true)
    );

    // Compare with the CPU-only pipeline (no transfer needed).
    let (cpu_sorted, cpu_stats) = CpuSorter.sort(&keys);
    let cpu_ms = baselines::CpuSortModel::athlon_64_4200().time_ms(&cpu_stats);
    assert_eq!(cpu_sorted, run.output);
    println!("\nCPU quicksort sort stage       : {cpu_ms:>8.2} ms (simulated)");
    println!(
        "\nGPU pipeline is {:.2}x faster on the sort stage even when paying the bus transfer.",
        cpu_ms / run.sim_time.total_ms
    );
}
