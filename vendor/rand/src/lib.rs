//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of `rand` the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`] — backed by xoshiro256** seeded via
//! SplitMix64. The generator is deterministic for a given seed, which is all
//! the workloads and tests rely on; it is *not* cryptographically secure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the role of `Standard`/`Distribution` in real `rand`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types over which a half-open `Range` can be sampled uniformly
/// (the role of `SampleUniform` in real `rand`).
pub trait SampleUniform: Sized {
    /// Draw one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unit-interval double in `[0, 1)` built from the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // The span is computed in the unsigned type of the same
                // width so a signed range wider than half the type (e.g.
                // -100i8..100) does not wrap to a negative, sign-extended
                // span. The truncating cast + wrapping add then lands back
                // in range under two's complement.
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                // Modulo sampling: the bias is < 2^-40 for every span used in
                // this workspace, which is immaterial for benchmarks/tests.
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Unit-interval float in `[0, 1)` built from 24 random bits, so the
/// result is exact in f32 and the upper bound stays exclusive (a 53-bit
/// f64 sample rounded to f32 could round up to 1.0).
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * unit_f32(rng)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * unit_f64(rng)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the full uniform distribution
    /// (floats are drawn from `[0, 1)`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Fill `dest` with random data.
    #[inline]
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

/// Types that can be filled with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrite `self` with bytes from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Extension trait providing `shuffle` on slices.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        // Spans wider than half the type: the naive signed subtraction
        // would wrap negative and sign-extend.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let a = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&a), "i8 out of range: {a}");
            let b = rng.gen_range(i32::MIN / 2 - 10..i32::MAX / 2 + 10);
            assert!((i32::MIN / 2 - 10..i32::MAX / 2 + 10).contains(&b));
        }
    }

    #[test]
    fn f32_unit_sample_is_exclusive_of_one() {
        // A 53-bit f64 sample rounded to f32 can round up to exactly 1.0;
        // the 24-bit f32 path must not.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100_000 {
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u), "unit sample out of range: {u}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
