//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! is written against `proc_macro` alone — no `syn`, no `quote`. It parses
//! the derive input with a small hand-rolled token walker and emits
//! field-by-field JSON serialization against the vendored `serde` shim's
//! concrete `Serializer` API.
//!
//! Supported shapes (everything this workspace derives): non-generic named
//! structs, tuple structs, unit structs, and enums with unit, tuple and
//! struct variants. Generic types produce a `compile_error!` so a future
//! need is loud rather than silently mis-serialized.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant and the shape of its payload.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(input: TokenStream) -> Self {
        Self {
            toks: input.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip any number of `#[...]` attributes (including doc comments).
    fn skip_attrs(&mut self) {
        loop {
            match (self.toks.get(self.pos), self.toks.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)` etc.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn ident(&mut self) -> Option<String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    /// Skip tokens until a comma at angle-bracket depth zero, consuming the
    /// comma. Groups are atomic tokens, so only `<`/`>` need tracking.
    fn skip_until_toplevel_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

/// Parse `{ field: Type, ... }` contents into field names.
fn parse_named_fields(group: TokenStream) -> Option<Vec<String>> {
    let mut p = Parser::new(group);
    let mut fields = Vec::new();
    loop {
        p.skip_attrs();
        if p.peek().is_none() {
            return Some(fields);
        }
        p.skip_vis();
        let name = p.ident()?;
        match p.next() {
            Some(TokenTree::Punct(c)) if c.as_char() == ':' => {}
            _ => return None,
        }
        fields.push(name);
        p.skip_until_toplevel_comma();
    }
}

/// Count the comma-separated types in a tuple struct/variant payload.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut p = Parser::new(group);
    let mut arity = 0;
    loop {
        p.skip_attrs();
        p.skip_vis();
        if p.peek().is_none() {
            return arity;
        }
        arity += 1;
        p.skip_until_toplevel_comma();
    }
}

fn parse_variants(group: TokenStream) -> Option<Vec<Variant>> {
    let mut p = Parser::new(group);
    let mut variants = Vec::new();
    loop {
        p.skip_attrs();
        if p.peek().is_none() {
            return Some(variants);
        }
        let name = p.ident()?;
        let kind = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                p.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                p.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional `= discriminant` and the trailing comma.
        p.skip_until_toplevel_comma();
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut p = Parser::new(input);
    p.skip_attrs();
    p.skip_vis();
    let kw = p
        .ident()
        .ok_or_else(|| "expected `struct` or `enum`".to_string())?;
    let name = p.ident().ok_or_else(|| "expected type name".to_string())?;
    if let Some(TokenTree::Punct(punct)) = p.peek() {
        if punct.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive shim does not support generic type `{name}`"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())
                    .ok_or_else(|| format!("could not parse fields of struct `{name}`"))?;
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(punct)) if punct.as_char() == ';' => {
                Ok(Shape::UnitStruct { name })
            }
            _ => Err(format!("could not parse body of struct `{name}`")),
        },
        "enum" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())
                    .ok_or_else(|| format!("could not parse variants of enum `{name}`"))?;
                Ok(Shape::Enum { name, variants })
            }
            _ => Err(format!("could not parse body of enum `{name}`")),
        },
        other => Err(format!(
            "the vendored serde_derive shim cannot derive for `{other}` items"
        )),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn serialize_body(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { fields, .. } => {
            let mut body = String::from("s.begin_object();\n");
            for f in fields {
                body.push_str(&format!("s.field({f:?}, &self.{f});\n"));
            }
            body.push_str("s.end_object();");
            body
        }
        // serde convention: a one-field (newtype) struct is transparent.
        Shape::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::serialize(&self.0, s);".to_string()
        }
        Shape::TupleStruct { arity, .. } => {
            let mut body = String::from("s.begin_array();\n");
            for i in 0..*arity {
                body.push_str(&format!("s.elem(&self.{i});\n"));
            }
            body.push_str("s.end_array();");
            body
        }
        Shape::UnitStruct { .. } => "s.null();".to_string(),
        Shape::Enum { variants, .. } => {
            let mut body = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("Self::{vname} => s.string({vname:?}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        body.push_str(&format!(
                            "Self::{vname}(f0) => {{ s.begin_object(); s.key({vname:?}); \
                             ::serde::Serialize::serialize(f0, s); s.end_object(); }}\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "Self::{vname}({}) => {{ s.begin_object(); s.key({vname:?}); \
                             s.begin_array(); ",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!("s.elem({b}); "));
                        }
                        arm.push_str("s.end_array(); s.end_object(); }\n");
                        body.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "Self::{vname} {{ {} }} => {{ s.begin_object(); s.key({vname:?}); \
                             s.begin_object(); ",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!("s.field({f:?}, {f}); "));
                        }
                        arm.push_str("s.end_object(); s.end_object(); }\n");
                        body.push_str(&arm);
                    }
                }
            }
            body.push('}');
            body
        }
    }
}

/// Derive `serde::Serialize` (JSON writer model — see the crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&e),
    };
    let name = match &shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name.clone(),
    };
    let body = serialize_body(&shape);
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self, s: &mut ::serde::Serializer) {{\n{body}\n}}\n\
         }}"
    );
    out.parse().unwrap_or_else(|_| {
        error("serde_derive shim generated invalid code; please report the input type")
    })
}

/// Derive `serde::Deserialize` (marker impl — nothing in the workspace
/// deserializes yet; see the vendored serde crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&e),
    };
    let name = match &shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name.clone(),
    };
    format!("#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
