//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with an associated `Value` type, `prop_map`,
//!   and `boxed`;
//! * range strategies for the primitive numeric types, [`strategy::Just`],
//!   [`collection::vec`] (with both exact-size and ranged sizes),
//!   [`bool::ANY`], and the weighted [`prop_oneof!`] union;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Inputs are sampled deterministically (seeded from the test name), and on
//! failure the offending case index is reported. There is **no shrinking**:
//! a failing case prints its inputs via the assertion message instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod test_runner {
    //! Configuration and the per-test case runner machinery.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config` used by the [`crate::proptest!`] macro.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected cases (via [`crate::prop_assume!`]) before the
        /// test errors out as under-constrained.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by an assumption; try another input.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure error.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Build a rejection error.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name so every run
    /// (and every CI machine) explores the same inputs.
    pub fn rng_for_test(name: &str) -> TestRng {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRng::seed_from_u64(h.finish())
    }
}

pub mod strategy {
    //! Strategies: deterministic samplers of arbitrary values.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking — a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Tuples of strategies are strategies over tuples, matching real
    /// proptest (each component sampled independently, left to right).
    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Weighted union of boxed strategies, built by [`crate::prop_oneof!`].
    pub struct WeightedUnion<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> WeightedUnion<T> {
        /// Build a union; panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any;

    /// The canonical [`Any`] instance, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Number of elements to generate: an exact count or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            Self(range)
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let Range { start, end } = self.size.0;
            let len = if start + 1 >= end {
                start
            } else {
                rng.gen_range(start..end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![3 => strat_a, 1 => strat_b]` picks `strat_a` three times as
/// often; the unweighted form gives every arm weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discard the current case (it does not count towards `cases`) when the
/// generated inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({} rejects for {} passes)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name), passed + 1, config.cases, msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_and_map_compose(v in vec(0u8..4u8, 10), w in vec(1usize..5, 0..6)) {
            prop_assert_eq!(v.len(), 10);
            prop_assert!(w.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_just_and_assume(k in prop_oneof![3 => 0i32..10, 1 => Just(-1i32)], b in crate::bool::ANY) {
            prop_assume!(k != 5);
            prop_assert!(k == -1 || (0..10).contains(&k));
            prop_assert_ne!(k, 5);
            let _ = b;
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = vec(0u32..5, 4).prop_map(|v| v.into_iter().sum::<u32>());
        let mut rng = crate::test_runner::rng_for_test("prop_map_transforms");
        for _ in 0..50 {
            let total = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(total <= 16);
        }
    }
}
