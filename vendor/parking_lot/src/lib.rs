//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible shims (see `vendor/` in the repository root). This crate
//! wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace actually uses: a [`Mutex`] whose `lock()` returns the guard
//! directly (no `Result`) and recovers from poisoning, plus [`RwLock`] with
//! the same convention.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with the `parking_lot` calling convention:
/// `lock()` never returns a `Result`, and a poisoned lock (a panic while the
/// guard was held) is transparently recovered rather than propagated.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a mutable reference to the protected value without locking
    /// (possible because `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` calling convention (no
/// `Result`, poisoning recovered).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_recovers() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
