//! A self-describing JSON value tree and a recursive-descent parser —
//! the `serde_json::Value` / `serde_json::from_str` subset this workspace
//! needs to read its own reports back (numbers are parsed as `f64`, which
//! covers every field the bench reports emit).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string (escape sequences decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (lookups by name only).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error: a message and the byte offset it was raised at.
#[derive(Debug)]
pub struct ParseError {
    msg: &'static str,
    offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            msg,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_literal(&mut self, lit: &str, msg: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => {
                self.eat_literal("true", "expected `true`")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false", "expected `false`")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.eat_literal("null", "expected `null`")?;
                Ok(Value::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected `{`")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the bench
                            // reports; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte sequence is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            from_str("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let doc = from_str(
            r#"{
  "wallclock": [
    { "scenario": "matrix-parallel", "case": "n=1024", "speedup": 26.99 },
    { "scenario": "matrix-sequential", "case": "x", "speedup": 2.5 }
  ],
  "empty": [],
  "none": {}
}"#,
        )
        .unwrap();
        let rows = doc.get("wallclock").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("scenario").unwrap().as_str().unwrap(),
            "matrix-parallel"
        );
        assert_eq!(rows[1].get("speedup").unwrap().as_f64().unwrap(), 2.5);
        assert_eq!(doc.get("empty").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn round_trips_the_shim_serializer_output() {
        #[derive(serde::Serialize)]
        struct Row {
            n: usize,
            ms: f64,
            label: String,
        }
        let json = crate::to_string_pretty(&vec![Row {
            n: 1024,
            ms: 3.5,
            label: "few-distinct(16)".into(),
        }])
        .unwrap();
        let parsed = from_str(&json).unwrap();
        let row = &parsed.as_array().unwrap()[0];
        assert_eq!(row.get("n").unwrap().as_f64().unwrap(), 1024.0);
        assert_eq!(row.get("ms").unwrap().as_f64().unwrap(), 3.5);
        assert_eq!(
            row.get("label").unwrap().as_str().unwrap(),
            "few-distinct(16)"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\": 1} x").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
