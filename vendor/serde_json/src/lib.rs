//! Offline stand-in for `serde_json`.
//!
//! Provides the entry points this workspace uses: [`to_string_pretty`]
//! on top of the vendored `serde` shim's concrete JSON
//! [`serde::Serializer`] (output matches real `serde_json` pretty
//! formatting — two-space indent, `": "` separators, floats keep `.0` —
//! except that non-finite floats serialize as `null` instead of
//! erroring), and a self-describing [`Value`] tree with [`from_str`] for
//! reading JSON back (the perf-regression gate parses committed
//! `BENCH_*.json` baselines with it).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod value;

pub use value::{from_str, Value};

use std::fmt;

/// Serialization error. The vendored writer is infallible, so this is never
/// constructed; it exists so call sites keep the `Result` shape of real
/// `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut s = serde::Serializer::new();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// Serialize `value` as a compact JSON string.
///
/// The vendored writer always pretty-prints, so this is an alias of
/// [`to_string_pretty`]; compact output can be added when something needs it.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Row {
        n: usize,
        ms: f64,
        label: String,
        opt: Option<f64>,
        pair: (f64, f64),
    }

    #[derive(Serialize, Deserialize)]
    enum Layout {
        Linear,
        RowMajor { width: u32 },
        Tagged(u32),
        Pair(u32, u32),
    }

    #[derive(Serialize, Deserialize)]
    struct Newtype(u32);

    #[test]
    fn derived_struct_matches_serde_json_pretty_format() {
        let row = Row {
            n: 32768,
            ms: 13.0,
            label: "abc".into(),
            opt: None,
            pair: (1.0, 2.5),
        };
        let json = super::to_string_pretty(&row).unwrap();
        assert!(json.contains("\"ms\": 13.0"), "got: {json}");
        assert!(json.contains("\"n\": 32768"));
        assert!(json.contains("\"opt\": null"));
        assert!(json.contains("\"label\": \"abc\""));
        assert!(json.starts_with("{\n  \""));
        assert!(json.ends_with("\n}"));
    }

    #[test]
    fn derived_enum_uses_external_tagging() {
        assert_eq!(
            super::to_string_pretty(&Layout::Linear).unwrap(),
            "\"Linear\""
        );
        let rm = super::to_string_pretty(&Layout::RowMajor { width: 8 }).unwrap();
        assert!(rm.contains("\"RowMajor\": {"), "got: {rm}");
        assert!(rm.contains("\"width\": 8"));
        let tagged = super::to_string_pretty(&Layout::Tagged(5)).unwrap();
        assert!(tagged.contains("\"Tagged\": 5"), "got: {tagged}");
        let pair = super::to_string_pretty(&Layout::Pair(1, 2)).unwrap();
        assert!(pair.contains("\"Pair\": ["), "got: {pair}");
    }

    #[test]
    fn newtype_struct_is_transparent() {
        assert_eq!(super::to_string_pretty(&Newtype(9)).unwrap(), "9");
    }

    #[test]
    fn vec_of_structs_nests() {
        let rows = vec![Newtype(1), Newtype(2)];
        assert_eq!(super::to_string_pretty(&rows).unwrap(), "[\n  1,\n  2\n]");
    }
}
