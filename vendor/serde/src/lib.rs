//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of serde the workspace uses: a [`Serialize`] trait driven by a
//! concrete pretty-printing JSON [`Serializer`] (rather than serde's generic
//! data model), a [`Deserialize`] marker trait (nothing in the workspace
//! deserializes yet), and `#[derive(Serialize, Deserialize)]` macros
//! re-exported from the vendored `serde_derive`.
//!
//! The derive generates field-by-field serialization for structs, tuple
//! structs and enums (unit, tuple and struct variants), following serde's
//! externally-tagged JSON conventions, so `serde_json::to_string_pretty`
//! output matches what real serde would produce for the types in this
//! workspace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

/// A pretty-printing JSON writer. This replaces serde's generic
/// `Serializer` trait: the only serializer this workspace needs is JSON.
#[derive(Debug, Default)]
pub struct Serializer {
    out: String,
    depth: usize,
    /// Whether the next `key`/`elem` at the current depth is the first one
    /// (controls comma placement); one flag per open container.
    first: Vec<bool>,
}

impl Serializer {
    /// Create an empty serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the serializer and return the JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    fn separate(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
            self.newline_indent();
        }
    }

    /// Open a JSON object. Pair with [`Serializer::end_object`].
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.first.push(true);
    }

    /// Close the innermost JSON object.
    pub fn end_object(&mut self) {
        self.depth -= 1;
        let was_empty = self.first.pop() == Some(true);
        if !was_empty {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Open a JSON array. Pair with [`Serializer::end_array`].
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.first.push(true);
    }

    /// Close the innermost JSON array.
    pub fn end_array(&mut self) {
        self.depth -= 1;
        let was_empty = self.first.pop() == Some(true);
        if !was_empty {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Write an object key; the caller must write exactly one value next.
    pub fn key(&mut self, name: &str) {
        self.separate();
        self.string(name);
        self.out.push_str(": ");
    }

    /// Write one object field: a key plus its serialized value.
    pub fn field(&mut self, name: &str, value: &dyn Serialize) {
        self.key(name);
        value.serialize(self);
    }

    /// Write one array element.
    pub fn elem(&mut self, value: &dyn Serialize) {
        self.separate();
        value.serialize(self);
    }

    /// Write `null`.
    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    /// Write a JSON boolean.
    pub fn boolean(&mut self, value: bool) {
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Write a JSON string with the mandatory escapes applied.
    pub fn string(&mut self, value: &str) {
        self.out.push('"');
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Write an integer.
    pub fn integer(&mut self, value: i128) {
        self.out.push_str(&value.to_string());
    }

    /// Write an unsigned integer.
    pub fn unsigned(&mut self, value: u128) {
        self.out.push_str(&value.to_string());
    }

    /// Write a float the way `serde_json` renders it: whole numbers keep a
    /// trailing `.0`, non-finite values become `null` (real `serde_json`
    /// rejects them; a report should degrade gracefully instead).
    pub fn float(&mut self, value: f64) {
        if !value.is_finite() {
            self.null();
        } else if value == value.trunc() && value.abs() < 1e15 {
            self.out.push_str(&format!("{value:.1}"));
        } else {
            self.out.push_str(&format!("{value}"));
        }
    }
}

/// Types that can write themselves as JSON through a [`Serializer`].
pub trait Serialize {
    /// Append this value's JSON representation to `s`.
    fn serialize(&self, s: &mut Serializer);
}

/// Marker trait paired with `#[derive(Deserialize)]`. Nothing in the
/// workspace deserializes yet, so the trait carries no methods; the derive
/// emits an empty impl so trait bounds keep working when deserialization
/// arrives.
pub trait Deserialize {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.integer(*self as i128);
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.unsigned(*self as u128);
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.boolean(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_array();
        for item in self {
            s.elem(item);
        }
        s.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_array();
                $(s.elem(&self.$idx);)+
                s.end_array();
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json(v: &dyn Serialize) -> String {
        let mut s = Serializer::new();
        v.serialize(&mut s);
        s.into_string()
    }

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(to_json(&13.0f64), "13.0");
        assert_eq!(to_json(&0.5f64), "0.5");
        assert_eq!(to_json(&42u32), "42");
        assert_eq!(to_json(&-7i64), "-7");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
        assert_eq!(to_json(&Option::<u32>::None), "null");
        assert_eq!(to_json(&f64::NAN), "null");
    }

    #[test]
    fn containers_pretty_print() {
        assert_eq!(to_json(&vec![1u32, 2]), "[\n  1,\n  2\n]");
        assert_eq!(to_json(&Vec::<u32>::new()), "[]");
        assert_eq!(to_json(&(1.5f64, 2u32)), "[\n  1.5,\n  2\n]");
    }

    #[test]
    fn objects_pretty_print() {
        let mut s = Serializer::new();
        s.begin_object();
        s.field("a", &1u32);
        s.field("b", &vec![true]);
        s.end_object();
        assert_eq!(
            s.into_string(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}"
        );
    }
}
