//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of criterion the workspace's bench targets use:
//!
//! * [`Criterion::benchmark_group`] with [`BenchmarkGroup::sample_size`],
//!   [`BenchmarkGroup::measurement_time`], [`BenchmarkGroup::throughput`],
//!   [`BenchmarkGroup::bench_function`] and
//!   [`BenchmarkGroup::bench_with_input`];
//! * [`BenchmarkId::new`], [`Throughput::Elements`] /
//!   [`Throughput::Bytes`], [`Bencher::iter`], [`black_box`];
//! * the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark body is timed over
//! `sample_size` samples (bounded by `measurement_time`) and the mean,
//! fastest and slowest sample go to stdout. There are no plots, no
//! statistical regression tests, and no saved baselines. The one CI-facing
//! behaviour preserved exactly is **`--test` mode**: invoked as
//! `cargo bench -- --test`, every benchmark body runs once and the binary
//! exits, so the harness cannot silently rot without failing CI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported compiler barrier for benchmark inputs/outputs.
pub use std::hint::black_box;

/// The benchmark context a `criterion_main!` binary threads through its
/// groups.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Configure from the process arguments, the way cargo invokes bench
    /// binaries: `--test` selects smoke mode (each body runs once),
    /// `--bench` (what `cargo bench` passes) is accepted and ignored, and
    /// the first free argument becomes a substring filter on benchmark
    /// ids. Unknown flags are ignored so new cargo versions cannot break
    /// the harness.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time" => {
                    let _ = args.next(); // flag takes a value; skip it
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// Print the closing line (kept for API compatibility).
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion shim: all benchmark bodies ran once (--test mode)");
        }
    }
}

/// A named set of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (each sample is one timed call of the body).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark; sampling stops early when spent.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Attach a throughput unit to subsequent benchmarks; per-sample rates
    /// are reported alongside times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: if self.criterion.test_mode {
                None // --test: exactly one sample, no budget
            } else {
                Some((self.sample_size, self.measurement_time))
            },
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput.as_ref());
    }
}

/// How many work units one call of a benchmark body processes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per call.
    Elements(u64),
    /// Bytes per call.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// The timing driver handed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    /// `None` in `--test` mode (one sample); otherwise (samples, budget).
    budget: Option<(usize, Duration)>,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let (samples, budget) = self.budget.unwrap_or((1, Duration::MAX));
        let started = Instant::now();
        for done in 0..samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if done + 1 < samples && started.elapsed() >= budget {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<&Throughput>) {
    if samples.is_empty() {
        println!("{id:<50} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let fastest = samples.iter().min().expect("non-empty");
    let slowest = samples.iter().max().expect("non-empty");
    let rate = throughput.map(|t| {
        let per_s = |units: u64| units as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", per_s(*n) / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", per_s(*n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{id:<50} mean {:>12?}  [{:?} .. {:?}]  ({} samples){}",
        mean,
        fastest,
        slowest,
        samples.len(),
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate a `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}
