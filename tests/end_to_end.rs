//! Cross-crate integration tests: every sorter in the repository produces
//! the same (correct) result on the same inputs, on both simulated GPU
//! profiles.

use gpu_abisort::prelude::*;

fn std_sorted(values: &[Value]) -> Vec<Value> {
    let mut v = values.to_vec();
    v.sort();
    v
}

#[test]
fn all_sorters_agree_on_uniform_input() {
    let n = 3000;
    let input = workloads::uniform(n, 99);
    let expected = std_sorted(&input);

    // Sequential adaptive bitonic sort.
    assert_eq!(adaptive_bitonic_sort(&input), expected);

    // GPU-ABiSort on both profiles and both layouts.
    for profile in [GpuProfile::geforce_6800(), GpuProfile::geforce_7800()] {
        for config in [SortConfig::z_order(), SortConfig::row_wise(2048)] {
            let mut gpu = StreamProcessor::new(profile.clone());
            let out = GpuAbiSorter::new(config).sort(&mut gpu, &input).unwrap();
            assert_eq!(out, expected, "{} / {}", profile.name, config.describe());
        }
    }

    // Baselines.
    let (cpu_out, _) = CpuSorter.sort(&input);
    assert_eq!(cpu_out, expected);
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    assert_eq!(
        GpuSortBaseline::new()
            .sort(&mut gpu, &input)
            .unwrap()
            .output,
        expected
    );
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    assert_eq!(
        OddEvenMergeSort::new()
            .sort(&mut gpu, &input)
            .unwrap()
            .output,
        expected
    );
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    assert_eq!(
        PeriodicBalancedSort::new()
            .sort(&mut gpu, &input)
            .unwrap()
            .output,
        expected
    );
}

#[test]
fn all_sorters_agree_on_every_distribution() {
    for dist in Distribution::all_for_data_dependence() {
        let input = workloads::generate(dist, 777, 5);
        let expected = std_sorted(&input);
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_6800());
        let abisort_out = GpuAbiSorter::new(SortConfig::default())
            .sort(&mut gpu, &input)
            .unwrap();
        assert_eq!(abisort_out, expected, "GPU-ABiSort on {}", dist.name());
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_6800());
        let gpusort_out = GpuSortBaseline::new()
            .sort(&mut gpu, &input)
            .unwrap()
            .output;
        assert_eq!(gpusort_out, expected, "GPUSort on {}", dist.name());
    }
}

#[test]
fn parallel_host_execution_matches_sequential_host_execution() {
    let n = 1 << 12;
    let input = workloads::uniform(n, 123);
    let sorter = GpuAbiSorter::new(SortConfig::default());

    let mut seq = StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Sequential);
    let seq_run = sorter.sort_run(&mut seq, &input).unwrap();

    let mut par = StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Parallel);
    let par_run = sorter.sort_run(&mut par, &input).unwrap();

    assert_eq!(seq_run.output, par_run.output);
    // Work-related counters are identical regardless of host execution mode.
    assert_eq!(
        seq_run.counters.kernel_instances,
        par_run.counters.kernel_instances
    );
    assert_eq!(seq_run.counters.comparisons, par_run.counters.comparisons);
    assert_eq!(
        seq_run.counters.stream_writes,
        par_run.counters.stream_writes
    );
    assert_eq!(seq_run.counters.launches, par_run.counters.launches);
}

#[test]
fn gpu_abisort_beats_the_network_sorter_in_stream_operations_and_work() {
    // The asymptotic argument of the paper: O(n log n) adaptive work vs
    // O(n log² n) network work, O(log² n) vs O(log² n)·… stream operations.
    let n = 1 << 14;
    let input = workloads::uniform(n, 31);

    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let abisort_run = GpuAbiSorter::new(SortConfig::default())
        .sort_run(&mut gpu, &input)
        .unwrap();

    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let gpusort_run = GpuSortBaseline::new().sort(&mut gpu, &input).unwrap();

    assert!(
        abisort_run.counters.comparisons < gpusort_run.counters.comparisons / 2,
        "adaptive work {} should be well below network work {}",
        abisort_run.counters.comparisons,
        gpusort_run.counters.comparisons
    );
}

#[test]
fn record_table_pipeline_round_trips() {
    use workloads::records::RecordTable;
    let table = RecordTable::generate(5000, 8);
    let keys = table.sort_keys();
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
    let sorted = GpuAbiSorter::new(SortConfig::default())
        .sort(&mut gpu, &keys)
        .unwrap();
    let reordered = table.reorder(&sorted);
    assert!(reordered.windows(2).all(|w| w[0].key <= w[1].key));
    assert_eq!(reordered.len(), table.len());
}

#[test]
fn simulated_tables_preserve_the_papers_ordering_at_moderate_n() {
    // A miniature Table 2/3 shape check at n = 2^15 (the smallest row of
    // the paper's tables): ABiSort(Z-order) < ABiSort(row-wise) and
    // ABiSort(Z-order) < CPU sort.
    let n = 1 << 15;
    let input = workloads::uniform(n, 2);

    let mut gpu = StreamProcessor::new(GpuProfile::geforce_6800());
    let z = GpuAbiSorter::new(SortConfig::z_order())
        .sort_run(&mut gpu, &input)
        .unwrap();
    let mut gpu = StreamProcessor::new(GpuProfile::geforce_6800());
    let row = GpuAbiSorter::new(SortConfig::row_wise(2048))
        .sort_run(&mut gpu, &input)
        .unwrap();
    let (_, cpu_stats) = CpuSorter.sort(&input);
    let cpu_ms = baselines::CpuSortModel::athlon_xp_3000().time_ms(&cpu_stats);

    assert!(z.sim_time.total_ms < row.sim_time.total_ms);
    assert!(z.sim_time.total_ms < cpu_ms);
}
