//! Cross-crate integration tests between the PRAM implementations
//! (Section 2.1's setting) and the sequential / stream implementations of
//! adaptive bitonic sorting.

use gpu_abisort::pram::sorters::{abisort_pram, bitonic_network, rank_merge};
use gpu_abisort::pram::PramModel;
use gpu_abisort::prelude::*;

fn sorted_reference(input: &[Value]) -> Vec<Value> {
    let mut copy = input.to_vec();
    copy.sort();
    copy
}

#[test]
fn all_pram_sorters_agree_with_the_stream_sorter() {
    for (n, seed) in [(1usize << 10, 1u64), (3000, 2), (1 << 12, 3)] {
        let input = workloads::uniform(n, seed);
        let expected = sorted_reference(&input);

        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let stream_out = GpuAbiSorter::new(SortConfig::default())
            .sort(&mut gpu, &input)
            .expect("stream sort failed");
        assert_eq!(stream_out, expected, "stream sorter wrong at n={n}");

        for (name, output) in [
            ("pram-abisort", abisort_pram::sort(&input).unwrap().output),
            (
                "pram-network",
                bitonic_network::sort(&input).unwrap().output,
            ),
            ("pram-rank-merge", rank_merge::sort(&input).unwrap().output),
        ] {
            assert_eq!(output, expected, "{name} wrong at n={n}");
        }
    }
}

#[test]
fn pram_and_stream_abisort_perform_identical_comparison_counts() {
    // The PRAM execution, the sequential reference and the stream program
    // are the same algorithm; only the machine differs.
    for log_n in [8u32, 10, 12] {
        let n = 1usize << log_n;
        let input = workloads::uniform(n, log_n as u64);

        let pram_run = abisort_pram::sort(&input).unwrap();
        let (_, seq_stats) = gpu_abisort::abisort::sequential::adaptive_bitonic_sort_with(
            &input,
            MergeVariant::Simplified,
        );
        assert_eq!(pram_run.stats.comparisons(), seq_stats.comparisons, "n={n}");

        // The *unoptimized* stream configuration also performs exactly these
        // comparisons (the Section-7 optimizations trade extra comparisons
        // for fewer stream operations, so the default config differs).
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let run = GpuAbiSorter::new(SortConfig::unoptimized())
            .sort_run(&mut gpu, &input)
            .unwrap();
        assert_eq!(run.counters.comparisons, seq_stats.comparisons, "n={n}");
    }
}

#[test]
fn overlapped_schedules_match_between_pram_and_stream_machine() {
    // Section 5.4's claim: the overlapped schedule needs 2j−1 steps per
    // recursion level. On the PRAM this is the literal step count; on the
    // stream machine every step becomes one stream operation of the merge.
    for log_n in [6u32, 8, 10] {
        let n = 1usize << log_n;
        let pram_steps = abisort_pram::total_steps(n, abisort_pram::Schedule::Overlapped);
        assert_eq!(pram_steps, (log_n as u64).pow(2), "n={n}");
    }
}

#[test]
fn pram_abisort_is_erew_while_rank_merge_is_not() {
    let input = workloads::uniform(1 << 11, 9);
    let abi = abisort_pram::sort(&input).unwrap();
    assert_eq!(abi.model, PramModel::Erew);
    assert_eq!(abi.stats.conflicts(PramModel::Erew), 0);

    let rank = rank_merge::sort(&input).unwrap();
    assert_eq!(rank.model, PramModel::Crew);
    assert!(rank.stats.read_conflicts > 0);
}

#[test]
fn pram_work_ordering_matches_the_papers_related_work_table() {
    // Work (comparisons): adaptive bitonic < bitonic network, and the
    // network and rank-merge both carry the Θ(log n) surcharge.
    let n = 1usize << 12;
    let input = workloads::uniform(n, 5);
    let abi = abisort_pram::sort(&input).unwrap().stats.comparisons();
    let net = bitonic_network::sort(&input).unwrap().stats.comparisons();
    let rank = rank_merge::sort(&input).unwrap().stats.comparisons();
    assert!(abi < net);
    assert!(abi < rank);
    // And the adaptive sort respects its 2 n log n bound while the others
    // exceed it at this size.
    let bound = 2 * (n as u64) * 12;
    assert!(abi < bound);
    assert!(net > bound);
}

#[test]
fn brent_speedup_grows_until_the_processor_bound() {
    let n = 1usize << 12;
    let input = workloads::uniform(n, 13);
    let run = abisort_pram::sort(&input).unwrap();
    let s16 = run.stats.speedup(16);
    let s256 = run.stats.speedup(256);
    let s_unlimited = run.stats.speedup(u64::MAX / 2);
    assert!(s16 > 8.0, "speed-up with 16 processors too low: {s16}");
    assert!(s256 > s16);
    assert!(s_unlimited >= s256);
}
