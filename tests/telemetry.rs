//! End-to-end telemetry properties:
//!
//! * the streaming [`LogHistogram`] merge is associative/commutative and
//!   its quantiles track exact sorted-vector percentiles within the
//!   bucket-resolution bound (1/64 relative), including the 0- and
//!   1-sample edges;
//! * a traced service run exports Chrome `trace_event` JSON that parses,
//!   has balanced `B`/`E` pairs on every track, and whose per-job span
//!   tree accounts for ≥ 95% of each job's end-to-end latency.
//!
//! The tracing test owns the process-global [`TraceSink`] and is the only
//! test in this binary that touches it, so the default parallel test
//! runner cannot interleave another enable/drain with it.

use proptest::collection::vec;
use proptest::prelude::*;
use sortsvc::{ServiceConfig, SortJob, SortService};
use stream_arch::telemetry::{chrome_trace_json, LogHistogram, TraceSink, SIM_PID};
use workloads::RequestMix;

/// Nearest-rank percentile of an unsorted sample set — the exact
/// reference the histogram approximates.
fn exact_percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Positive samples spanning ~12 orders of magnitude, the histogram's
/// working range for millisecond latencies.
fn sample_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 1.0e-6f64..1.0e6f64,
        1 => Just(0.0f64),
        1 => 1.0e-9f64..1.0e-6f64,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in vec(sample_strategy(), 0..200),
        b in vec(sample_strategy(), 0..200),
        c in vec(sample_strategy(), 0..200),
    ) {
        let h = |samples: &[f64]| {
            let mut h = LogHistogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (ha, hb, hc) = (h(&a), h(&b), h(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c) == one histogram over everything.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right = hc.clone();
        right.merge(&hb);
        right.merge(&ha);
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let flat = h(&all);

        for hist in [&left, &right] {
            prop_assert_eq!(hist.count(), flat.count());
            prop_assert!((hist.sum() - flat.sum()).abs() <= 1e-9 * flat.sum().abs().max(1.0));
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(hist.quantile(q), flat.quantile(q));
            }
        }
    }

    #[test]
    fn histogram_quantiles_stay_within_bucket_resolution(
        samples in vec(sample_strategy(), 0..400),
        // Exclusive upper bound (the vendored proptest has no inclusive
        // ranges); q = 1.0 is pinned in the edge-case test below.
        q in 0.0f64..1.0f64,
    ) {
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let exact = exact_percentile(&samples, q);
        let approx = hist.quantile(q);
        // Log-bucketed with 32 sub-buckets per octave: the bucket midpoint
        // is within 1/64 of any sample in the bucket.
        prop_assert!(
            (approx - exact).abs() <= exact.abs() / 64.0 + 1e-12,
            "q={} exact={} approx={}", q, exact, approx
        );
    }
}

#[test]
fn histogram_edges_are_exact_for_zero_and_one_sample() {
    let empty = LogHistogram::new();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.5), 0.0);
    assert_eq!(empty.quantile(0.99), 0.0);
    assert_eq!(empty.mean(), 0.0);

    let mut one = LogHistogram::new();
    one.record(3.7251);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(one.quantile(q), 3.7251, "a 1-sample histogram is exact");
    }
    assert_eq!(one.mean(), 3.7251);
}

/// The tentpole acceptance test: trace a full service run, export it, and
/// check that (a) the export is valid JSON with balanced begin/end pairs
/// and (b) the queue + execute child spans account for ≥ 95% of every
/// job's end-to-end latency.
#[test]
fn traced_service_run_exports_balanced_spans_covering_job_latency() {
    let sink = TraceSink::global();
    sink.set_enabled(true);
    let service = SortService::new(ServiceConfig::default());
    let jobs = SortJob::from_requests(RequestMix::small_job_heavy(40).generate(2026));
    let report = service.process(jobs).expect("service run");
    sink.set_enabled(false);
    let events = sink.take_events();
    assert!(report.metrics.jobs_completed > 0);

    // (b) per-job coverage, from the raw events: group the simulated-pid
    // job tracks and compare the "job" span against its children.
    let mut covered_jobs = 0;
    for ev in events.iter().filter(|e| e.pid == SIM_PID && e.cat == "job") {
        let children_us: f64 = events
            .iter()
            .filter(|c| c.tid == ev.tid && c.pid == SIM_PID && matches!(c.cat, "queue" | "execute"))
            .map(|c| c.dur_us)
            .sum();
        assert!(
            ev.dur_us <= 0.0 || children_us >= 0.95 * ev.dur_us,
            "span tree covers {:.1}% of job '{}' ({}us of {}us)",
            100.0 * children_us / ev.dur_us,
            ev.name,
            children_us,
            ev.dur_us
        );
        covered_jobs += 1;
    }
    assert_eq!(
        covered_jobs, report.metrics.jobs_completed,
        "every completed job gets a traced span tree"
    );

    // (a) the export parses and every track's B/E pairs balance with
    // proper nesting (an E always closes the most recent open B).
    let json = chrome_trace_json(&events);
    let doc = serde_json::from_str(&json).expect("trace JSON parses");
    let spans = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!spans.is_empty());
    let mut open: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    for span in spans {
        let pid = span.get("pid").and_then(|v| v.as_f64()).unwrap() as u64;
        let tid = span.get("tid").and_then(|v| v.as_f64()).unwrap() as u64;
        let name = span
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        match span.get("ph").and_then(|v| v.as_str()).unwrap() {
            "B" => open.entry((pid, tid)).or_default().push(name),
            "E" => {
                let stack = open.get_mut(&(pid, tid)).expect("E without B");
                assert_eq!(stack.pop().as_deref(), Some(name.as_str()), "LIFO nesting");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), stack) in &open {
        assert!(
            stack.is_empty(),
            "unclosed spans on pid {pid} tid {tid}: {stack:?}"
        );
    }
}
