//! Property tests for the sorting service: the batched/coalesced service
//! path must return byte-identical per-job results to sorting each job
//! alone sequentially, across all `Distribution` variants and job sizes
//! from the empty job up to ~10k elements.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::{PolicyConfig, ServiceConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The service under test, shared across cases (policy calibration runs
/// probe sorts once).
fn service() -> &'static SortService {
    static SERVICE: OnceLock<SortService> = OnceLock::new();
    SERVICE.get_or_init(|| {
        SortService::new(ServiceConfig {
            device_slots: 2,
            // Small batches keep debug-mode runtime in check while still
            // coalescing several jobs per launch set.
            max_batch_elements: 4096,
            ..ServiceConfig::default()
        })
    })
}

/// A service whose policy routes mid-sized jobs through the out-of-core
/// engine, so the property also covers the terasort path.
fn out_of_core_service() -> &'static SortService {
    static SERVICE: OnceLock<SortService> = OnceLock::new();
    SERVICE.get_or_init(|| {
        SortService::new(ServiceConfig {
            max_batch_elements: 4096,
            tera_run_size: 4096,
            policy: PolicyConfig {
                out_of_core_threshold: 6_000,
                ..PolicyConfig::default()
            },
            ..ServiceConfig::default()
        })
    })
}

fn all_distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::NearlySorted { swaps: 16 },
        Distribution::FewDistinct { distinct: 4 },
        Distribution::OrganPipe,
        Distribution::Constant,
    ]
}

/// (size, distribution index, seed) per job: sizes weighted towards the
/// small-job regime the coalescer targets, with the empty and
/// single-element edges and an occasional large job.
fn job_spec_strategy() -> impl Strategy<Value = (usize, usize, u64)> {
    let size = prop_oneof![
        2 => 0usize..4,
        10 => 4usize..600,
        3 => 600usize..2500,
    ];
    (size, 0usize..all_distributions().len(), 0u64..1_000_000).boxed()
}

fn jobs_from_specs(specs: &[(usize, usize, u64)]) -> Vec<SortJob> {
    let dists = all_distributions();
    specs
        .iter()
        .enumerate()
        .map(|(i, &(n, dist_idx, seed))| {
            let dist = dists[dist_idx];
            SortJob::new(i as u64, (i % 3) as u32, workloads::generate(dist, n, seed))
                .arriving_at(i as f64 * 0.01)
                .with_hint(dist)
        })
        .collect()
}

/// Sequential reference: sort each job alone. Sorted output is unique under
/// the total order, so `sort()` is the canonical result every engine must
/// reproduce bit for bit.
fn reference_outputs(jobs: &[SortJob]) -> Vec<Vec<Value>> {
    jobs.iter()
        .map(|job| {
            let mut v = job.values.clone();
            v.sort();
            v
        })
        .collect()
}

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

fn assert_service_matches_reference(svc: &SortService, jobs: Vec<SortJob>) {
    let expected = reference_outputs(&jobs);
    let report = svc.process(jobs).expect("service run failed");
    assert!(report.rejected.is_empty(), "nothing should be rejected");
    assert_eq!(report.results.len(), expected.len());
    for (result, expected) in report.results.iter().zip(&expected) {
        assert_eq!(
            bits(&result.output),
            bits(expected),
            "job {} ({}) differs from the sequential sort",
            result.id,
            result.engine.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coalesced_service_matches_sequential_per_job_sorts(
        specs in proptest::collection::vec(job_spec_strategy(), 1..10)
    ) {
        let jobs = jobs_from_specs(&specs);
        let expected = reference_outputs(&jobs);
        let report = service().process(jobs).expect("service run failed");
        prop_assert!(report.rejected.is_empty());
        prop_assert_eq!(report.results.len(), expected.len());
        for (result, expected) in report.results.iter().zip(&expected) {
            prop_assert_eq!(bits(&result.output), bits(expected));
        }
    }
}

#[test]
fn every_distribution_round_trips_through_the_batched_path() {
    for dist in all_distributions() {
        let jobs: Vec<SortJob> = (0..6)
            .map(|i| {
                SortJob::new(
                    i,
                    i as u32 % 2,
                    workloads::generate(dist, 100 + 37 * i as usize, i),
                )
                .with_hint(dist)
            })
            .collect();
        assert_service_matches_reference(service(), jobs);
    }
}

#[test]
fn empty_and_single_element_jobs_survive_coalescing() {
    let jobs = vec![
        SortJob::new(0, 0, vec![]),
        SortJob::new(1, 0, workloads::uniform(1, 7)),
        SortJob::new(2, 1, workloads::uniform(2, 8)),
        SortJob::new(3, 1, vec![]),
        SortJob::new(4, 2, workloads::uniform(100, 9)),
    ];
    assert_service_matches_reference(service(), jobs);
}

#[test]
fn ten_k_jobs_match_including_the_out_of_core_route() {
    // A ~10k job exercises the upper end of the issue's size range; on the
    // out-of-core service it routes through terasort, on the default
    // service through a solo GPU submission. Both must reproduce the
    // sequential sort bit for bit.
    let jobs: Vec<SortJob> = vec![
        SortJob::new(0, 0, workloads::uniform(10_000, 3)),
        SortJob::new(1, 1, workloads::generate(Distribution::Reverse, 9_999, 4)),
        SortJob::new(2, 2, workloads::uniform(50, 5)),
    ];
    assert_service_matches_reference(service(), jobs.clone());

    let report = out_of_core_service().process(jobs.clone()).unwrap();
    let expected = reference_outputs(&jobs);
    assert_eq!(report.results[0].engine.name(), "terasort");
    for (result, expected) in report.results.iter().zip(&expected) {
        assert_eq!(bits(&result.output), bits(expected));
    }
}

/// The sharded-execution property of the multi-device engine: for every
/// slot count, any splitter oversampling factor, and adversarially skewed
/// inputs where naive splitters would collapse the shards (all-equal
/// keys, presorted, reverse-sorted), the sharded service run is
/// byte-identical to the single-slot run of the same jobs.
#[test]
fn sharded_execution_is_byte_identical_to_single_slot_execution() {
    use gpu_abisort::sortsvc::PolicyConfig as Pc;

    let adversarial = [
        Distribution::Constant,
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::FewDistinct { distinct: 2 },
    ];
    let jobs_for = |dist: Distribution| -> Vec<SortJob> {
        vec![
            // Above the forced sharding threshold: takes the sharded route
            // on every multi-slot service.
            SortJob::new(0, 0, workloads::generate(dist, 3000, 77)).with_hint(dist),
            // Small companions that coalesce around the reservation.
            SortJob::new(1, 1, workloads::generate(dist, 120, 78)).with_hint(dist),
            SortJob::new(2, 2, workloads::uniform(65, 79)),
        ]
    };

    for device_slots in 1..=8usize {
        // One calibration per slot count, shared across the oversampling
        // factors and distributions.
        let policy = SortPolicy::calibrate(
            &GpuProfile::geforce_7800(),
            &SortConfig::default(),
            &Pc {
                shard_slots: device_slots,
                sharded_min_override: Some(512),
                ..Pc::default()
            },
        );
        for oversample in [1usize, 3, 16] {
            for dist in adversarial {
                let jobs = jobs_for(dist);
                let service = |slots: usize| {
                    SortService::with_policy(
                        ServiceConfig {
                            device_slots: slots,
                            shard_oversample: oversample,
                            ..ServiceConfig::default()
                        },
                        policy.clone(),
                    )
                };
                let sharded = service(device_slots).process(jobs.clone()).unwrap();
                let single = service(1).process(jobs).unwrap();
                assert_eq!(sharded.results.len(), single.results.len());
                for (s, o) in sharded.results.iter().zip(&single.results) {
                    assert_eq!(
                        bits(&s.output),
                        bits(&o.output),
                        "slots={device_slots} oversample={oversample} dist={} job {}",
                        dist.name(),
                        s.id
                    );
                }
                if device_slots > 1 {
                    assert_eq!(
                        sharded.results[0].engine.name(),
                        "sharded-gpu",
                        "slots={device_slots}: the large job must take the sharded route"
                    );
                    assert!(sharded.metrics.shard_skew_max >= 1.0);
                }
            }
        }
    }
}

#[test]
fn service_results_are_deterministic_across_runs() {
    let jobs = SortJob::from_requests(workloads::RequestMix::small_job_heavy(24).generate(5));
    let a = service().process(jobs.clone()).unwrap();
    let b = service().process(jobs).unwrap();
    assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
    assert_eq!(a.metrics.latency_p99_ms, b.metrics.latency_p99_ms);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(bits(&x.output), bits(&y.output));
        assert_eq!(x.batch, y.batch);
    }
}

/// Reference model for the tenant rotation, formulated independently of
/// the queue implementation: a tenant is in the rotation **at most once**
/// (checked by membership, not by the queue-was-empty shortcut), joins at
/// the back when it gains work, and rotates to the back after taking a
/// turn.
#[derive(Default)]
struct RotationModel {
    queues: std::collections::BTreeMap<u32, std::collections::VecDeque<u64>>,
    rotation: std::collections::VecDeque<u32>,
}

impl RotationModel {
    fn push(&mut self, tenant: u32, id: u64) {
        if !self.rotation.contains(&tenant) {
            self.rotation.push_back(tenant);
        }
        self.queues.entry(tenant).or_default().push_back(id);
    }

    fn pop(&mut self) -> Option<(u32, u64)> {
        let tenant = self.rotation.pop_front()?;
        let queue = self.queues.get_mut(&tenant).unwrap();
        let id = queue.pop_front().unwrap();
        if !queue.is_empty() {
            self.rotation.push_back(tenant);
        }
        Some((tenant, id))
    }
}

/// A tenant that drains and immediately re-pushes must rejoin the rotation
/// at the **back** — it does not keep its old slot and must not appear
/// twice (no double-turn).
#[test]
fn drained_tenant_repushing_rejoins_at_the_back() {
    use gpu_abisort::sortsvc::TenantQueues;
    let mut q = TenantQueues::new();
    q.push(SortJob::new(0, 0, workloads::uniform(1, 0)));
    q.push(SortJob::new(1, 1, workloads::uniform(1, 1)));
    q.push(SortJob::new(2, 2, workloads::uniform(1, 2)));
    // Tenant 0 takes its turn and drains...
    let first = q.pop_fair().unwrap();
    assert_eq!((first.tenant, first.id), (0, 0));
    // ...and immediately re-pushes before anyone else moves.
    q.push(SortJob::new(3, 0, workloads::uniform(1, 3)));
    let order: Vec<(u32, u64)> = std::iter::from_fn(|| q.pop_fair())
        .map(|j| (j.tenant, j.id))
        .collect();
    assert_eq!(
        order,
        vec![(1, 1), (2, 2), (0, 3)],
        "a drained tenant that re-pushes goes to the back of the rotation, once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved push/pop sequences over a handful of tenants: the queue
    /// must agree with the independent rotation model on every dequeue —
    /// in particular across the drain-then-repush edge, which the
    /// generator hits constantly with only 4 tenants in play.
    #[test]
    fn tenant_rotation_matches_reference_model_under_interleaving(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (0u32..4).prop_map(Some),  // push to tenant t
                2 => Just(None),                // pop_fair
            ],
            1..200,
        ),
    ) {
        use gpu_abisort::sortsvc::TenantQueues;
        let mut q = TenantQueues::new();
        let mut model = RotationModel::default();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Some(tenant) => {
                    q.push(SortJob::new(next_id, tenant, workloads::uniform(1, next_id)));
                    model.push(tenant, next_id);
                    next_id += 1;
                }
                None => {
                    let got = q.pop_fair().map(|j| (j.tenant, j.id));
                    prop_assert_eq!(got, model.pop());
                }
            }
        }
        // Drain what's left: the tails must agree too.
        loop {
            let got = q.pop_fair().map(|j| (j.tenant, j.id));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
