//! Identity and snapshot properties of the launch-graph planner:
//!
//! * **Staged == eager, byte for byte.** Executing a recorded [`SortPlan`]
//!   as fused stages ([`stream_arch::PlanMode::Staged`]) must be
//!   indistinguishable from the eager one-launch-per-node interpretation
//!   — output bytes, every counter (including per-unit cache statistics),
//!   and simulated time — across every execution mode × accounting mode,
//!   for full sorts, segmented batch sorts, and block merges. This is the
//!   acceptance criterion of the planner tentpole: fusion and plan caching
//!   are wall-clock-only optimizations.
//! * **Plans are cached per problem shape** under staged planning and
//!   re-recorded per run under eager planning.
//! * **The plan dump is pinned** against a committed golden snapshot
//!   (`tests/golden_plan_n64.txt`), so accidental changes to the recorded
//!   launch graph — fusion boundaries, buffer refs, Table-1 blocks — show
//!   up as a reviewable diff.

use abisort::stream_sort::SortPlan;
use abisort::{GpuAbiSorter, SortConfig};
use stream_arch::{
    AccountingMode, ExecMode, GpuProfile, PlanMode, StageFusion, StreamProcessor, Value,
};
use workloads::Distribution;

fn processor(mode: ExecMode, accounting: AccountingMode, plan: PlanMode) -> StreamProcessor {
    let mut proc = StreamProcessor::with_mode(GpuProfile::geforce_7800(), mode);
    proc.set_accounting_mode(accounting);
    proc.set_plan_mode(plan);
    proc
}

const MODES: [ExecMode; 3] = [
    ExecMode::Sequential,
    ExecMode::Parallel,
    ExecMode::SpawnParallel,
];
const ACCOUNTING: [AccountingMode; 2] = [AccountingMode::Batched, AccountingMode::PerAccess];

/// Full sorts: staged and eager plan interpretation must produce
/// byte-identical run records under every engine combination, including
/// sizes below the Section 7 optimization cutoff and non-power-of-two
/// lengths.
#[test]
fn staged_sort_runs_are_byte_identical_to_eager_sort_runs() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    for mode in MODES {
        for accounting in ACCOUNTING {
            let mut staged = processor(mode, accounting, PlanMode::Staged);
            let mut eager = processor(mode, accounting, PlanMode::Eager);
            for (n, dist) in [
                (8usize, Distribution::Uniform),
                (257, Distribution::Sorted),
                (2048, Distribution::FewDistinct { distinct: 4 }),
            ] {
                let input = workloads::generate(dist, n, 23);
                let a = sorter.sort_run(&mut staged, &input).unwrap();
                let b = sorter.sort_run(&mut eager, &input).unwrap();
                let label = format!("{mode:?}/{accounting:?} {} n={n}", dist.name());
                assert_eq!(a.output, b.output, "output diverged: {label}");
                assert_eq!(a.counters, b.counters, "counters diverged: {label}");
                assert_eq!(
                    a.sim_time.total_ms, b.sim_time.total_ms,
                    "simulated time diverged: {label}"
                );
            }
        }
    }
}

/// Segmented batch sorts and block merges — the service paths — under the
/// parallel/batched engine (where stage fusion actually fires) against the
/// eager interpretation.
#[test]
fn staged_segment_and_block_merge_runs_match_eager() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut staged = processor(
        ExecMode::Parallel,
        AccountingMode::Batched,
        PlanMode::Staged,
    );
    let mut eager = processor(ExecMode::Parallel, AccountingMode::Batched, PlanMode::Eager);

    let segmented_input = workloads::uniform(16 * 64, 9);
    let a = sorter
        .sort_segments_run(&mut staged, &segmented_input, 64)
        .unwrap();
    let b = sorter
        .sort_segments_run(&mut eager, &segmented_input, 64)
        .unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.sim_time.total_ms, b.sim_time.total_ms);

    // Blocks sorted in alternating directions — the merge_blocks_run
    // precondition.
    let mut merge_input: Vec<Value> = workloads::uniform(1024, 5);
    for (i, block) in merge_input.chunks_mut(128).enumerate() {
        if i % 2 == 0 {
            block.sort();
        } else {
            block.sort_by(|x, y| y.cmp(x));
        }
    }
    let a = sorter
        .merge_blocks_run(&mut staged, &merge_input, 128)
        .unwrap();
    let b = sorter
        .merge_blocks_run(&mut eager, &merge_input, 128)
        .unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.sim_time.total_ms, b.sim_time.total_ms);
}

/// Forced stage fusion (bypassing the host-parallelism heuristic, so the
/// fused worker-pool epochs run even on single-core hosts) against eager
/// execution: the full fused sort must stay byte-identical end to end.
#[test]
fn forced_fusion_sorts_match_eager_sorts() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut fused = processor(
        ExecMode::Parallel,
        AccountingMode::Batched,
        PlanMode::Staged,
    );
    fused.set_stage_fusion(StageFusion::Always);
    let mut eager = processor(ExecMode::Parallel, AccountingMode::Batched, PlanMode::Eager);
    for (n, dist) in [
        (64usize, Distribution::Uniform),
        (2048, Distribution::Uniform),
        (4097, Distribution::FewDistinct { distinct: 8 }),
    ] {
        let input = workloads::generate(dist, n, 41);
        let a = sorter.sort_run(&mut fused, &input).unwrap();
        let b = sorter.sort_run(&mut eager, &input).unwrap();
        assert_eq!(a.output, b.output, "fused output diverged at n={n}");
        assert_eq!(a.counters, b.counters, "fused counters diverged at n={n}");
        assert_eq!(
            a.sim_time.total_ms, b.sim_time.total_ms,
            "fused simulated time diverged at n={n}"
        );
    }
}

/// Staged planning records each problem shape once and replays it; eager
/// planning never populates the cache (it re-records per run, the
/// pre-planner behaviour the wall-clock differential is measured against).
#[test]
fn plans_are_cached_per_shape_under_staged_planning_only() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    assert_eq!(sorter.cached_plans(), 0);

    let mut eager = processor(
        ExecMode::Sequential,
        AccountingMode::Batched,
        PlanMode::Eager,
    );
    sorter
        .sort_run(&mut eager, &workloads::uniform(256, 1))
        .unwrap();
    assert_eq!(sorter.cached_plans(), 0, "eager planning must not cache");

    let mut staged = processor(
        ExecMode::Sequential,
        AccountingMode::Batched,
        PlanMode::Staged,
    );
    for _ in 0..3 {
        sorter
            .sort_run(&mut staged, &workloads::uniform(256, 2))
            .unwrap();
    }
    assert_eq!(sorter.cached_plans(), 1, "one shape, one cached plan");
    sorter
        .sort_run(&mut staged, &workloads::uniform(512, 3))
        .unwrap();
    assert_eq!(sorter.cached_plans(), 2, "a new shape records a new plan");
    // Non-power-of-two lengths pad onto an existing shape.
    sorter
        .sort_run(&mut staged, &workloads::uniform(300, 4))
        .unwrap();
    assert_eq!(sorter.cached_plans(), 2, "padded shapes share their plan");

    // Clones share the cache (the service hands one sorter to many slots).
    assert_eq!(sorter.clone().cached_plans(), 2);
}

/// The recorded plan for the default configuration at n = 64 is pinned
/// against the committed golden dump (regenerate with
/// `cargo run -p bench --bin repro -- --dump-plan 64`).
#[test]
fn plan_dump_matches_the_committed_golden_snapshot() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let dump = sorter
        .describe_plan(64)
        .expect("n=64 runs a stream program");
    let golden = include_str!("golden_plan_n64.txt");
    assert_eq!(
        dump, golden,
        "launch plan changed; review the diff and regenerate \
         tests/golden_plan_n64.txt with repro --dump-plan 64"
    );
}

/// The dump's own accounting is consistent: the header's node/stage totals
/// match the body, and the key round-trips through the public helpers.
#[test]
fn plan_dump_header_matches_its_body() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let key = sorter.sort_plan_key(4096).unwrap();
    let plan = SortPlan::record(key);
    assert_eq!(plan.key(), key);
    let text = plan.describe();
    assert!(text.contains(&format!(
        "{} nodes in {} stages, {} kernel instances",
        plan.num_nodes(),
        plan.num_stages(),
        plan.total_instances()
    )));
    let stage_lines = text.lines().filter(|l| l.starts_with("stage ")).count();
    assert_eq!(stage_lines, plan.num_stages());
    // No stream program for degenerate inputs.
    assert!(sorter.sort_plan_key(1).is_none());
    assert!(sorter.describe_plan(0).is_none());
}
