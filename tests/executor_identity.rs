//! Property tests for the persistent execution engine:
//!
//! * the pooled parallel engine ([`ExecMode::Parallel`]) is **byte
//!   identical** to the legacy spawn-per-launch engine
//!   ([`ExecMode::SpawnParallel`]) — output bytes, all counters including
//!   per-unit cache statistics, simulated time, and returned errors —
//!   across launch shapes including 0/1-instance and error-aborted
//!   launches;
//! * the pooled engine agrees with the sequential reference on output
//!   bytes, all work counters, and the returned error (cache statistics
//!   and simulated time additionally match whenever the profile has a
//!   single unit, where the chunk schedules coincide);
//! * repeated pooled runs are deterministic;
//! * the stream arena reaches a steady state: repeated sorts on one
//!   pooled processor stop allocating — the (type, capacity-class) bin
//!   count and pooled-buffer count do not grow, and every subsequent run
//!   is served from the pool.

use abisort::{GpuAbiSorter, SortConfig};
use proptest::prelude::*;
use stream_arch::{
    AccountingMode, Counters, ExecMode, GatherView, GpuProfile, Layout, ReadView, SimTime, Stream,
    StreamProcessor, WriteView,
};
use workloads::Distribution;

/// A launch shape: how many instances, over how many simulated units, and
/// whether the kernel is poisoned to fail at a given instance.
#[derive(Clone, Debug)]
struct Shape {
    instances: usize,
    units: usize,
    launches: usize,
    fail_at: Option<usize>,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        // Instance counts on both sides of the executor's small-launch
        // inline threshold (256): the low arms cover the inline path and
        // 0/1-instance degenerate shapes, the high arms force dispatch
        // through the worker pool.
        prop_oneof![
            3 => 0usize..200,
            1 => Just(0usize),
            1 => Just(1usize),
            1 => Just(16usize),
            1 => Just(17usize),
            2 => 257usize..2000,
            1 => Just(1024usize),
        ],
        prop_oneof![
            1 => Just(1usize),
            1 => Just(3usize),
            1 => Just(8usize),
            1 => Just(16usize),
        ],
        1usize..4,
        // A failure selector folded onto the instance range below (None =
        // clean launch).
        prop_oneof![
            3 => Just(None),
            2 => (0usize..1 << 16).prop_map(Some),
        ],
    )
        .prop_map(|(instances, units, launches, fail_pick)| Shape {
            instances,
            units,
            launches,
            fail_at: fail_pick.and_then(|p| (instances > 0).then(|| p % instances)),
        })
}

/// Outcome of running one shape under one execution mode: everything that
/// must be reproducible.
#[derive(Debug, PartialEq)]
struct Outcome {
    output: Vec<u32>,
    counters: Counters,
    sim_time: SimTime,
    errors: Vec<Option<String>>,
}

/// Run `shape.launches` launches of a kernel that reads, gathers and
/// writes — and, when poisoned, gathers out of bounds at `fail_at`.
fn run_shape(shape: &Shape, mode: ExecMode) -> Outcome {
    run_shape_accounted(shape, mode, AccountingMode::Batched)
}

/// [`run_shape`] under an explicit accounting mode.
fn run_shape_accounted(shape: &Shape, mode: ExecMode, accounting: AccountingMode) -> Outcome {
    let mut proc =
        StreamProcessor::with_mode(GpuProfile::geforce_6800().with_units(shape.units), mode);
    proc.set_accounting_mode(accounting);
    let n = shape.instances;
    let input = Stream::from_vec("in", (0..n as u32).collect(), Layout::ZOrder);
    let lookup = Stream::from_vec("lut", (0..n.max(1) as u32).rev().collect(), Layout::Linear);
    let mut out: Stream<u32> = Stream::new("out", n, Layout::ZOrder);
    let mut errors = Vec::new();
    for _ in 0..shape.launches {
        let read = ReadView::contiguous(&input, 0, n, 1).unwrap();
        let gather = GatherView::new(&lookup);
        let write = WriteView::contiguous(&mut out, 0, n, 1).unwrap();
        let fail_at = shape.fail_at;
        let lut_len = lookup.len();
        let result = proc.launch("shape", n, |ctx| {
            let i = ctx.instance_index();
            let v = read.get(ctx, 0);
            // A poisoned instance gathers past the end; everything else
            // does a legal data-dependent gather.
            let idx = if fail_at == Some(i) { lut_len + 7 } else { i };
            let g = gather.gather(ctx, idx);
            ctx.count_comparisons(1);
            write.set(ctx, 0, v.wrapping_mul(3).wrapping_add(g));
        });
        errors.push(result.err().map(|e| format!("{e:?}")));
        proc.record_step();
    }
    Outcome {
        output: out.as_slice().to_vec(),
        counters: proc.counters(),
        sim_time: proc.simulated_time(),
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pooled == spawn, byte for byte: the engines differ only in host
    /// scheduling, so every observable — including per-unit cache stats,
    /// simulated time and error values — must coincide.
    #[test]
    fn pooled_engine_is_byte_identical_to_spawn_engine(shape in shape_strategy()) {
        let pooled = run_shape(&shape, ExecMode::Parallel);
        let spawn = run_shape(&shape, ExecMode::SpawnParallel);
        prop_assert_eq!(&pooled.output, &spawn.output);
        prop_assert_eq!(&pooled.counters, &spawn.counters);
        prop_assert_eq!(&pooled.sim_time, &spawn.sim_time);
        prop_assert_eq!(&pooled.errors, &spawn.errors);
    }

    /// Pooled == sequential on everything the chunk schedule cannot
    /// change: output bytes, launches/steps, instances, comparisons, and
    /// the returned error (always the error of the smallest failing
    /// instance). On single-unit profiles the schedules coincide, so
    /// cache statistics and simulated time must match too.
    #[test]
    fn pooled_engine_matches_the_sequential_reference(shape in shape_strategy()) {
        let pooled = run_shape(&shape, ExecMode::Parallel);
        let seq = run_shape(&shape, ExecMode::Sequential);
        prop_assert_eq!(&pooled.errors, &seq.errors);
        prop_assert_eq!(pooled.counters.launches, seq.counters.launches);
        prop_assert_eq!(pooled.counters.steps, seq.counters.steps);
        prop_assert_eq!(pooled.counters.kernel_instances, seq.counters.kernel_instances);
        if shape.fail_at.is_none() {
            // Error-free launches execute every instance in both modes, so
            // the work counters and output coincide exactly. (An aborted
            // sequential launch stops at the failing instance while other
            // parallel units still run their chunks — the pre-existing
            // abort semantics, pinned byte-identically by the
            // pooled-vs-spawn property above.)
            prop_assert_eq!(&pooled.output, &seq.output);
            prop_assert_eq!(pooled.counters.comparisons, seq.counters.comparisons);
            prop_assert_eq!(pooled.counters.stream_reads, seq.counters.stream_reads);
            prop_assert_eq!(pooled.counters.stream_writes, seq.counters.stream_writes);
            prop_assert_eq!(pooled.counters.gathers, seq.counters.gathers);
        }
        if shape.units == 1 {
            prop_assert_eq!(&pooled.counters, &seq.counters);
            prop_assert_eq!(&pooled.sim_time, &seq.sim_time);
        }
    }

    /// The pooled engine is deterministic run to run.
    #[test]
    fn pooled_engine_is_deterministic(shape in shape_strategy()) {
        let first = run_shape(&shape, ExecMode::Parallel);
        let second = run_shape(&shape, ExecMode::Parallel);
        prop_assert_eq!(first, second);
    }

    /// Batched accounting == per-access accounting, byte for byte, under
    /// every execution mode: output bytes, all counters (including the
    /// per-unit cache statistics merged into them), simulated time and
    /// returned errors. This is the E21 identity assertion for the
    /// block-accumulation cost model, over shapes including 0/1-instance
    /// and error-aborted launches.
    #[test]
    fn batched_accounting_is_byte_identical_to_per_access(shape in shape_strategy()) {
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::SpawnParallel] {
            let batched = run_shape_accounted(&shape, mode, AccountingMode::Batched);
            let reference = run_shape_accounted(&shape, mode, AccountingMode::PerAccess);
            prop_assert_eq!(&batched.output, &reference.output);
            prop_assert_eq!(&batched.counters, &reference.counters);
            prop_assert_eq!(&batched.sim_time, &reference.sim_time);
            prop_assert_eq!(&batched.errors, &reference.errors);
        }
    }
}

/// Sort-level accounting identity: full GPU-ABiSort runs (which exercise
/// the bulk view accessors, the vectorized copy launch and the gather
/// paths) produce byte-identical records under both accounting modes,
/// across distributions and under arena reuse.
#[test]
fn batched_sort_runs_are_byte_identical_to_per_access_sort_runs() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut batched = StreamProcessor::new(GpuProfile::geforce_7800());
    batched.set_accounting_mode(AccountingMode::Batched);
    let mut reference = StreamProcessor::new(GpuProfile::geforce_7800());
    reference.set_accounting_mode(AccountingMode::PerAccess);
    for dist in [
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::FewDistinct { distinct: 4 },
    ] {
        for n in [257usize, 1000, 2048] {
            let input = workloads::generate(dist, n, 23);
            let a = sorter.sort_run(&mut batched, &input).unwrap();
            let b = sorter.sort_run(&mut reference, &input).unwrap();
            assert_eq!(a.output, b.output, "{} n={n}", dist.name());
            assert_eq!(a.counters, b.counters, "{} n={n}", dist.name());
            assert_eq!(
                a.sim_time.total_ms,
                b.sim_time.total_ms,
                "{} n={n}",
                dist.name()
            );
        }
    }
}

/// Sort-level identity: a full GPU-ABiSort run under the pooled engine
/// reproduces the sequential run's output, counters and simulated time
/// byte-for-byte against the spawn baseline, across distributions.
#[test]
fn pooled_sort_runs_are_byte_identical_to_spawn_sort_runs() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    for dist in [
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::FewDistinct { distinct: 4 },
    ] {
        let input = workloads::generate(dist, 2048, 11);
        let mut pooled = StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::Parallel);
        let mut spawn =
            StreamProcessor::with_mode(GpuProfile::geforce_7800(), ExecMode::SpawnParallel);
        let a = sorter.sort_run(&mut pooled, &input).unwrap();
        let b = sorter.sort_run(&mut spawn, &input).unwrap();
        assert_eq!(a.output, b.output, "{}", dist.name());
        assert_eq!(a.counters, b.counters, "{}", dist.name());
        assert_eq!(a.sim_time.total_ms, b.sim_time.total_ms, "{}", dist.name());
    }
}

/// Arena steady state: after the first sort warmed the pool, repeated
/// sorts of the same size must not grow the (type, class) bin census and
/// must stop allocating (misses stay flat while hits grow).
#[test]
fn arena_reaches_steady_state_across_repeated_sorts() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    proc.arena().set_enabled(true);
    let input = workloads::uniform(1000, 3);

    // Warm-up: the first run allocates every class once.
    sorter.sort_run(&mut proc, &input).unwrap();
    let warm_classes = proc.arena_ref().class_count();
    let warm_buffers = proc.arena_ref().pooled_buffers();
    let warm_misses = proc.arena_ref().stats().misses;
    assert!(warm_classes > 0, "the sort must use the arena");
    assert!(warm_buffers > 0, "the run must recycle its streams");

    for round in 0..10 {
        let run = sorter.sort_run(&mut proc, &input).unwrap();
        assert_eq!(run.output.len(), input.len());
        assert_eq!(
            proc.arena_ref().class_count(),
            warm_classes,
            "allocation-class count grew in round {round}"
        );
        assert_eq!(
            proc.arena_ref().pooled_buffers(),
            warm_buffers,
            "pooled-buffer count grew in round {round}"
        );
        assert_eq!(
            proc.arena_ref().stats().misses,
            warm_misses,
            "round {round} had to allocate instead of reusing"
        );
    }
    let stats = proc.arena_ref().stats();
    assert!(stats.hits >= 10 * 7, "reuse hits: {stats:?}");

    // The arena's effect is wall-clock only: a pooling-off processor
    // produces the identical run record.
    let mut cold = StreamProcessor::new(GpuProfile::geforce_7800());
    cold.arena().set_enabled(false);
    let a = sorter.sort_run(&mut proc, &input).unwrap();
    let b = sorter.sort_run(&mut cold, &input).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.sim_time.total_ms, b.sim_time.total_ms);
}

/// The batched service path reuses arena buffers across batches on one
/// pooled processor, and stays byte-identical to the pooling-off run.
#[test]
fn segmented_batches_reuse_the_arena_across_submissions() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    proc.arena().set_enabled(true);
    let input = workloads::uniform(16 * 64, 9);

    sorter.sort_segments_run(&mut proc, &input, 64).unwrap();
    let warm_classes = proc.arena_ref().class_count();
    let warm_misses = proc.arena_ref().stats().misses;
    for _ in 0..5 {
        sorter.sort_segments_run(&mut proc, &input, 64).unwrap();
        assert_eq!(proc.arena_ref().class_count(), warm_classes);
        assert_eq!(proc.arena_ref().stats().misses, warm_misses);
    }
}
