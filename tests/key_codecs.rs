//! Property tests for the `sortsvc::keys` codec laws.
//!
//! Every [`SortKey`] (and [`WideKey`]) codec must satisfy two laws:
//!
//! * **round-trip** — `decode(encode(k)) == k` for every key `k`;
//! * **order-isomorphism** — `a < b ⇔ encode(a) < encode(b)` under the
//!   type's documented total order (native `Ord` for integers, strings
//!   and tuples; IEEE-754 `total_cmp` for floats).
//!
//! The suites below hammer both laws across the full domains, with the
//! edge cases the codecs exist for weighted in explicitly: `MIN`/`MAX`
//! integers, `NaN`/`-NaN`/`±0.0`/`±∞`/subnormal floats, and empty and
//! maximum-length strings.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::keys::{
    encoded_to_value, key_to_record, key_to_value, record_to_key, record_to_wide_key,
    value_to_encoded, value_to_key, wide_key_to_record, WIDE_KEY_BITS,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Full-domain integer strategy: the half-open range misses `MAX`, so the
/// extremes are welded back in as explicit arms.
macro_rules! int_strategy {
    ($name:ident, $t:ty) => {
        fn $name() -> impl Strategy<Value = $t> {
            prop_oneof![
                8 => <$t>::MIN..<$t>::MAX,
                1 => Just(<$t>::MIN),
                1 => Just(<$t>::MAX),
            ]
        }
    };
}

int_strategy!(any_u8, u8);
int_strategy!(any_u16, u16);
int_strategy!(any_u32, u32);
int_strategy!(any_u64, u64);
int_strategy!(any_i8, i8);
int_strategy!(any_i16, i16);
int_strategy!(any_i32, i32);
int_strategy!(any_i64, i64);

fn any_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -1.0e38f32..1.0e38f32,
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::NAN),
        1 => Just(-f32::NAN),
        1 => Just(f32::MIN_POSITIVE),
        1 => Just(-f32::MIN_POSITIVE),
        1 => Just(1.0e-42f32), // subnormal
        1 => Just(f32::MAX),
        1 => Just(f32::MIN),
    ]
}

fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e300f64..1.0e300f64,
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::NAN),
        1 => Just(-f64::NAN),
        1 => Just(f64::MIN_POSITIVE),
        1 => Just(5.0e-324f64), // subnormal
        1 => Just(f64::MAX),
        1 => Just(f64::MIN),
    ]
}

fn any_str_key() -> impl Strategy<Value = StrKey> {
    prop_oneof![
        1 => Just(StrKey::new("").unwrap()),
        1 => Just(StrKey::new("zzzzzzzz").unwrap()),
        1 => Just(StrKey::new("\u{1}").unwrap()),
        6 => vec(1u8..128, 0..9).prop_map(|bytes| {
            let s: String = bytes.into_iter().map(char::from).collect();
            StrKey::new(&s).expect("ASCII, NUL-free, at most 8 bytes")
        }),
    ]
}

/// Total order on floats for the law checks (native `<` is not total).
fn tc32(a: &f32, b: &f32) -> std::cmp::Ordering {
    a.total_cmp(b)
}
fn tc64(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Bit-exact equality for float round-trips (`NaN != NaN` under `==`).
fn same_f32(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits()
}
fn same_f64(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

// ---------------------------------------------------------------------------
// Integer and bool codec laws
// ---------------------------------------------------------------------------

macro_rules! int_codec_laws {
    ($($test:ident => $strat:ident, $t:ty);+ $(;)?) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            $(
                #[test]
                fn $test(a in $strat(), b in $strat()) {
                    prop_assert_eq!(<$t as SortKey>::decode(a.encode()), a);
                    prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
                }
            )+
        }
    };
}

int_codec_laws! {
    u8_codec_laws  => any_u8,  u8;
    u16_codec_laws => any_u16, u16;
    u32_codec_laws => any_u32, u32;
    u64_codec_laws => any_u64, u64;
    i8_codec_laws  => any_i8,  i8;
    i16_codec_laws => any_i16, i16;
    i32_codec_laws => any_i32, i32;
    i64_codec_laws => any_i64, i64;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bool_codec_laws(a in proptest::bool::ANY, b in proptest::bool::ANY) {
        prop_assert_eq!(bool::decode(a.encode()), a);
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
    }
}

// ---------------------------------------------------------------------------
// Float codec laws (IEEE total order, including NaN payload round-trips)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn f32_codec_laws(a in any_f32(), b in any_f32()) {
        prop_assert!(same_f32(f32::decode(a.encode()), a),
            "f32 round-trip lost bits: {a:?}");
        prop_assert_eq!(a.encode().cmp(&b.encode()), tc32(&a, &b));
    }

    #[test]
    fn f64_codec_laws(a in any_f64(), b in any_f64()) {
        prop_assert!(same_f64(f64::decode(a.encode()), a),
            "f64 round-trip lost bits: {a:?}");
        prop_assert_eq!(a.encode().cmp(&b.encode()), tc64(&a, &b));
    }
}

// ---------------------------------------------------------------------------
// Composite tuple codec laws (lexicographic)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pair_codec_laws(a in (any_i32(), any_u32()), b in (any_i32(), any_u32())) {
        prop_assert_eq!(<(i32, u32)>::decode(a.encode()), a);
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
    }

    #[test]
    fn float_pair_codec_laws(a in (any_f32(), any_u16()), b in (any_f32(), any_u16())) {
        let ra = <(f32, u16)>::decode(a.encode());
        prop_assert!(same_f32(ra.0, a.0) && ra.1 == a.1);
        let native = tc32(&a.0, &b.0).then(a.1.cmp(&b.1));
        prop_assert_eq!(a.encode().cmp(&b.encode()), native);
    }

    #[test]
    fn triple_codec_laws(
        a in (any_u8(), any_i16(), any_u32()),
        b in (any_u8(), any_i16(), any_u32()),
    ) {
        prop_assert_eq!(<(u8, i16, u32)>::decode(a.encode()), a);
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
    }
}

// ---------------------------------------------------------------------------
// String codec laws (prefix codec + dictionary fallback)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn str_key_codec_laws(a in any_str_key(), b in any_str_key()) {
        prop_assert_eq!(StrKey::decode(a.encode()), a);
        prop_assert_eq!(a.encode().cmp(&b.encode()), a.as_str().cmp(b.as_str()));
    }

    #[test]
    fn string_dictionary_laws(strings in vec(vec(1u8..128, 0..24), 0..32)) {
        let strings: Vec<String> = strings
            .into_iter()
            .map(|b| b.into_iter().map(char::from).collect())
            .collect();
        let dict = StringDictionary::build(strings.iter().cloned());
        // Round-trip: every member encodes, and its code decodes back.
        for s in &strings {
            let code = dict.encode(s).expect("member must encode");
            prop_assert_eq!(dict.decode(code), Some(s.as_str()));
        }
        // Order-isomorphism within the closed set.
        for a in &strings {
            for b in &strings {
                let (ca, cb) = (dict.encode(a).unwrap(), dict.encode(b).unwrap());
                prop_assert_eq!(ca.cmp(&cb), a.cmp(b));
            }
        }
        // Non-members are rejected, not mis-ranked ('\u{0}' never occurs).
        prop_assert_eq!(dict.encode("\u{0}"), None);
        prop_assert_eq!(dict.decode(dict.len() as u64), None);
    }
}

// ---------------------------------------------------------------------------
// Wide (> 64-bit) composite keys and the WideRecord packing
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wide_key_codec_laws(
        a in (any_f64(), any_u16()), b in (any_f64(), any_u16()),
        pa in any_u64(), pb in any_u64(),
    ) {
        type W = (f64, u16);
        prop_assert_eq!(<W as WideKey>::WIDE_BITS, WIDE_KEY_BITS);
        let ra = W::decode_wide(a.encode_wide());
        prop_assert!(same_f64(ra.0, a.0) && ra.1 == a.1);
        let native = tc64(&a.0, &b.0).then(a.1.cmp(&b.1));
        prop_assert_eq!(a.encode_wide().cmp(&b.encode_wide()), native);

        // Packing into WideRecord keeps the order: lexicographic byte
        // order on the 10-byte key equals numeric order on the encoding.
        let (rec_a, rec_b) = (wide_key_to_record(&a, pa), wide_key_to_record(&b, pb));
        prop_assert_eq!(rec_a.key.cmp(&rec_b.key), native);
        let back: W = record_to_wide_key(&rec_a);
        prop_assert!(same_f64(back.0, a.0) && back.1 == a.1);
        prop_assert_eq!(rec_a.payload, pa);
    }
}

// ---------------------------------------------------------------------------
// Engine bridges: the codecs must survive the Value and WideRecord domains
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_bridge_laws(a in any_u64(), b in any_u64()) {
        prop_assert_eq!(value_to_encoded(&encoded_to_value(a)), a);
        let (va, vb) = (encoded_to_value(a), encoded_to_value(b));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn typed_value_bridge_laws(a in any_i64(), b in any_i64()) {
        prop_assert_eq!(value_to_key::<i64>(&key_to_value(&a)), a);
        let (va, vb) = (key_to_value(&a), key_to_value(&b));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    #[test]
    fn record_bridge_laws(a in any_i64(), b in any_i64(), payload in any_u64()) {
        let rec = key_to_record(&a, payload);
        prop_assert_eq!(record_to_key::<i64>(&rec), a);
        prop_assert_eq!(rec.payload, payload);
        // Lexicographic record-key order equals the native key order.
        let rec_b = key_to_record(&b, payload);
        prop_assert_eq!(rec.key.cmp(&rec_b.key), a.cmp(&b));
    }
}
