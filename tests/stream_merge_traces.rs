//! Trace-level integration test following Figures 2 and 3 of the paper:
//! the phase kernels modify node pairs, redirect child pointers to the
//! locations the next phase will write, and the node output stream fills
//! according to the Table-1 layout.
//!
//! The paper's Figure 2 uses three example trees of 2³ nodes; here the same
//! structure is checked programmatically for a full level merge of several
//! 8-node trees, asserting the properties the figure illustrates rather
//! than one hard-coded trace:
//!
//! 1. after phase 0, every (root, spare) output pair is ordered according
//!    to its tree's sort direction and the pq stream holds the root's
//!    children;
//! 2. after each later phase, the nodes written in that phase's Table-1
//!    block are exactly the ones the kernel visited, and their redirected
//!    child pointers point into the next phase's block;
//! 3. after the last phase, the in-order traversal of every output tree is
//!    monotone in the tree's direction.

use abisort::stream_sort::kernels::{self, init_input_trees};
use abisort::stream_sort::layout_plan::table1_element_block;
use gpu_abisort::prelude::*;
use stream_arch::Stream;

const N: usize = 32; // four trees of 8 nodes at level j = 3
const J: u32 = 3;

struct Trace {
    trees_a: Stream<Node>,
    trees_b: Stream<Node>,
    pq: [Stream<u32>; 2],
    proc: StreamProcessor,
}

fn setup() -> (Trace, Vec<Value>) {
    // Four bitonic 8-blocks (each: 4 ascending then 4 descending values).
    let mut input = Vec::new();
    for t in 0..4 {
        let mut block = workloads::uniform(8, 100 + t as u64);
        block[..4].sort();
        block[4..].sort_by(|a, b| b.cmp(a));
        input.extend(block);
    }
    let mut trees_a = Stream::new("trees-a", 2 * N, Layout::ZOrder);
    init_input_trees(&mut trees_a, &input);
    let trace = Trace {
        trees_a,
        trees_b: Stream::new("trees-b", 2 * N, Layout::ZOrder),
        pq: [
            Stream::new("pq-a", 2 * N, Layout::Linear),
            Stream::new("pq-b", 2 * N, Layout::Linear),
        ],
        proc: StreamProcessor::new(GpuProfile::geforce_6800()),
    };
    (trace, input)
}

#[test]
fn phase_by_phase_trace_follows_figures_2_and_3() {
    let (mut t, input) = setup();
    let num_trees = N >> J; // 4

    // --- Initialization: extract roots and spares ------------------------
    kernels::extract_roots_and_spares(&mut t.proc, &t.trees_a, &mut t.trees_b, N, J).unwrap();
    kernels::copy_back(&mut t.proc, &t.trees_b, &mut t.trees_a, (0, 2 * num_trees)).unwrap();
    for tree in 0..num_trees {
        // Root of tree `tree` is input element 8·tree + 3, spare 8·tree + 7.
        assert_eq!(t.trees_a.get(num_trees + tree).value, input[8 * tree + 3]);
        assert_eq!(t.trees_a.get(tree).value, input[8 * tree + 7]);
    }

    // --- Stage 0 ----------------------------------------------------------
    let len0 = num_trees;
    kernels::phase0(
        &mut t.proc,
        &t.trees_a,
        &mut t.trees_b,
        &mut t.pq[0],
        0,
        len0,
        1,
    )
    .unwrap();
    kernels::copy_back(&mut t.proc, &t.trees_b, &mut t.trees_a, (0, 2 * len0)).unwrap();
    for tree in 0..num_trees {
        let ascending = tree % 2 == 0;
        let written_root = t.trees_a.get(2 * tree).value;
        let written_spare = t.trees_a.get(2 * tree + 1).value;
        // Property 1: the (root, spare) pair is ordered per direction.
        if ascending {
            assert!(written_root <= written_spare, "tree {tree}");
        } else {
            assert!(written_root >= written_spare, "tree {tree}");
        }
        // The pq stream points at the root's children in the *input* half.
        let p = t.pq[0].get(2 * tree) as usize;
        let q = t.pq[0].get(2 * tree + 1) as usize;
        for idx in [p, q] {
            assert!(
                (N..2 * N).contains(&idx),
                "stage 0 phase 1 must gather children from the input trees, got {idx}"
            );
        }
    }

    // --- Stage 0, phases 1 and 2 ------------------------------------------
    for phase in 1..J {
        let out_block = table1_element_block(0, phase, num_trees);
        let next_start = table1_element_block(0, phase + 1, num_trees).0;
        let (pq_in, pq_out) = if phase % 2 == 1 {
            let (a, b) = t.pq.split_at_mut(1);
            (&a[0], &mut b[0])
        } else {
            let (a, b) = t.pq.split_at_mut(1);
            (&b[0], &mut a[0])
        };
        kernels::phase_i(
            &mut t.proc,
            &t.trees_a,
            &mut t.trees_b,
            pq_in,
            0,
            pq_out,
            0,
            out_block,
            next_start,
            len0,
            1,
        )
        .unwrap();
        kernels::copy_back(&mut t.proc, &t.trees_b, &mut t.trees_a, out_block).unwrap();

        // Property 2: redirected child pointers of the written nodes point
        // into the next phase's block (except in the final phase, where the
        // children are leaves and the pointers are never followed).
        if phase + 1 < J {
            for offset in 0..out_block.1 {
                let node = t.trees_a.get(out_block.0 + offset);
                let in_next_block =
                    |idx: u32| (next_start..next_start + out_block.1).contains(&(idx as usize));
                assert!(
                    in_next_block(node.left) || in_next_block(node.right),
                    "phase {phase}: node at {} should point into the next block",
                    out_block.0 + offset
                );
            }
        }
    }

    // The merge is not finished after stage 0 (only one path per tree was
    // fixed); run the remaining stages through the high-level driver and
    // check the final property on a fresh setup instead.
    let (mut t2, input2) = setup();
    let mut streams = abisort::stream_sort::merge::MergeStreams {
        trees_a: t2.trees_a,
        trees_b: t2.trees_b,
        pq: t2.pq,
    };
    abisort::stream_sort::merge::merge_level(&mut t2.proc, &mut streams, N, J, false, 0).unwrap();
    // Property 3: every output tree is monotone in its direction and a
    // permutation of its input block.
    for tree in 0..num_trees {
        let block: Vec<Value> = (0..8)
            .map(|i| streams.trees_a.get(8 * tree + i).value)
            .collect();
        let mut expected = input2[8 * tree..8 * (tree + 1)].to_vec();
        expected.sort();
        if tree % 2 == 1 {
            expected.reverse();
        }
        assert_eq!(block, expected, "tree {tree}");
    }
}

#[test]
fn node_output_stream_is_in_order_after_the_last_stage() {
    // Section 5.3: "the output of the last step of the merge … contains all
    // 2^(log n − j) completely modified bitonic trees … in a non-interleaved
    // manner" — i.e. reading the value fields of elements [0, n) linearly
    // yields the merged sequences back to back.
    let (mut t, input) = setup();
    let mut streams = abisort::stream_sort::merge::MergeStreams {
        trees_a: t.trees_a,
        trees_b: t.trees_b,
        pq: t.pq,
    };
    abisort::stream_sort::merge::merge_level(&mut t.proc, &mut streams, N, J, true, 0).unwrap();
    let linear: Vec<Value> = (0..N).map(|i| streams.trees_a.get(i).value).collect();
    let mut expected = Vec::new();
    for tree in 0..4 {
        let mut block = input[8 * tree..8 * (tree + 1)].to_vec();
        block.sort();
        if tree % 2 == 1 {
            block.reverse();
        }
        expected.extend(block);
    }
    assert_eq!(linear, expected);
}
