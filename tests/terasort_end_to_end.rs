//! End-to-end tests of the hybrid out-of-core pipeline (the GPUTeraSort
//! scenario of Section 2.2) across the workspace crates.

use gpu_abisort::prelude::*;
use gpu_abisort::terasort::record;

fn sort_table(
    records: &[gpu_abisort::terasort::WideRecord],
    core_sorter: CoreSorter,
    run_size: usize,
    profile: DiskProfile,
) -> (
    Vec<gpu_abisort::terasort::WideRecord>,
    gpu_abisort::terasort::TeraSortReport,
) {
    let mut disk = SimulatedDisk::new(profile);
    let input = disk.create("table");
    disk.append(input, records);
    let config = TeraSortConfig {
        run_size,
        core_sorter,
        gpu_profile: GpuProfile::geforce_7800(),
        ..TeraSortConfig::default()
    };
    let report = TeraSorter::new(config)
        .sort(&mut disk, input)
        .expect("terasort failed");
    (disk.read_all(report.output), report)
}

#[test]
fn sorts_a_table_many_times_larger_than_the_run_size() {
    let records = record::generate(50_000, 1);
    let (sorted, report) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        4_096,
        DiskProfile::raid_2006(),
    );
    assert_eq!(report.runs, 13);
    assert!(record::is_sorted(&sorted));
    assert!(record::is_permutation(&records, &sorted));
    assert!(report.stream_ops > 0);
    assert!(report.total_ms > 0.0);
}

#[test]
fn the_three_in_core_sorters_agree_record_for_record() {
    let records = record::generate(12_000, 3);
    let (a, _) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        2_048,
        DiskProfile::ideal(),
    );
    let (b, _) = sort_table(
        &records,
        CoreSorter::GpuBitonicNetwork,
        2_048,
        DiskProfile::ideal(),
    );
    let (c, _) = sort_table(
        &records,
        CoreSorter::CpuQuicksort,
        2_048,
        DiskProfile::ideal(),
    );
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn row_wise_and_z_order_abisort_configurations_agree_inside_the_pipeline() {
    let records = record::generate(8_000, 5);
    let (a, _) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::z_order()),
        2_048,
        DiskProfile::ideal(),
    );
    let (b, _) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::row_wise(1024)),
        2_048,
        DiskProfile::ideal(),
    );
    assert_eq!(a, b);
}

#[test]
fn skewed_wide_keys_are_resolved_by_the_reorder_stage() {
    // Heavy partial-key collisions: the GPU can only order the 3-byte
    // prefixes, the CPU reorder stage must finish the job.
    let records = record::generate_skewed(20_000, 16, 7);
    let (sorted, report) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        4_096,
        DiskProfile::ideal(),
    );
    assert!(record::is_sorted(&sorted));
    assert!(record::is_permutation(&records, &sorted));
    assert!(report.fixup.tied_records > 0);
    assert!(report.fixup.comparisons > 0);
}

#[test]
fn disk_profile_shifts_the_io_compute_balance_not_the_result() {
    let records = record::generate(16_384, 11);
    let (hdd_out, hdd) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        4_096,
        DiskProfile::hdd_2006(),
    );
    let (raid_out, raid) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        4_096,
        DiskProfile::raid_2006(),
    );
    assert_eq!(hdd_out, raid_out);
    assert!(hdd.run_phase.io_ms > raid.run_phase.io_ms);
    assert!(hdd.total_ms >= raid.total_ms);
}

#[test]
fn larger_runs_mean_fewer_runs_and_less_merge_work() {
    let records = record::generate(32_768, 13);
    let (_, small_runs) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        2_048,
        DiskProfile::ideal(),
    );
    let (_, large_runs) = sort_table(
        &records,
        CoreSorter::GpuAbiSort(SortConfig::default()),
        8_192,
        DiskProfile::ideal(),
    );
    assert!(large_runs.runs < small_runs.runs);
    assert!(large_runs.merge_comparisons < small_runs.merge_comparisons);
}
