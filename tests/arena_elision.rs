//! Property tests for zero-fill elision ([`stream_arch::StreamArena`]'s
//! `take_uninit` / write-watermark API):
//!
//! * sorts that allocate their working streams uninitialized from a
//!   recycled arena are **byte identical** — output, every counter, cache
//!   statistics and simulated time — to fresh-allocation runs, across
//!   distributions, sizes straddling capacity-class boundaries, and
//!   recycled-buffer reuse chains (where the uninit buffers really do
//!   carry a previous, differently-sized run's stale data);
//! * the elision actually fires in steady state (elided-element stats
//!   grow run over run) — a regression guard against the API silently
//!   degrading to the refilling path;
//! * the segmented batch path stays identical under reuse too.

use abisort::{GpuAbiSorter, SortConfig};
use proptest::prelude::*;
use stream_arch::{GpuProfile, StreamProcessor};
use workloads::Distribution;

fn distribution_strategy() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Uniform),
        Just(Distribution::Sorted),
        Just(Distribution::Reverse),
        Just(Distribution::NearlySorted { swaps: 16 }),
        Just(Distribution::FewDistinct { distinct: 4 }),
    ]
}

/// Sizes straddling the arena's power-of-two capacity classes: just
/// below, at, and just above a class boundary, plus small degenerates.
fn size_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        1 => 0usize..3,
        2 => 200usize..280,
        3 => 960usize..1100,
        2 => 2000usize..2100,
        2 => 4000usize..4200,
    ]
}

/// A fresh-allocation reference run: new processor, pooling and elision
/// off, so every stream is a brand-new default-initialized allocation —
/// the pre-arena semantics the elided runs must reproduce bit for bit.
fn reference_run(
    sorter: &GpuAbiSorter,
    input: &[stream_arch::Value],
) -> (Vec<stream_arch::Value>, stream_arch::Counters, f64) {
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    proc.arena().set_enabled(false);
    proc.arena().set_elision(false);
    let run = sorter.sort_run(&mut proc, input).expect("reference sort");
    (run.output, run.counters, run.sim_time.total_ms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A chain of differently-sized, differently-distributed sorts on one
    /// pooled processor with elision on: every run's uninit streams are
    /// backed by the previous runs' stale buffers, and every run must be
    /// byte-identical to a fresh-allocation run of the same input.
    #[test]
    fn uninit_reuse_chains_are_byte_identical_to_fresh_runs(
        chain in proptest::collection::vec((distribution_strategy(), size_strategy(), 0u64..1000), 2..6)
    ) {
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let mut pooled = StreamProcessor::new(GpuProfile::geforce_7800());
        pooled.arena().set_enabled(true);
        pooled.arena().set_elision(true);
        for (dist, n, seed) in chain {
            let input = workloads::generate(dist, n, seed);
            let run = sorter.sort_run(&mut pooled, &input).expect("pooled sort");
            let (ref_out, ref_counters, ref_sim) = reference_run(&sorter, &input);
            prop_assert_eq!(&run.output, &ref_out);
            prop_assert_eq!(&run.counters, &ref_counters);
            prop_assert_eq!(run.sim_time.total_ms, ref_sim);
        }
    }

    /// The elision-off switch really restores refilling semantics *and*
    /// stays byte-identical too (the measurement baseline of E21 must be
    /// functionally indistinguishable).
    #[test]
    fn elision_off_pooled_runs_are_also_identical(
        case in (distribution_strategy(), size_strategy(), 0u64..1000)
    ) {
        let (dist, n, seed) = case;
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let mut pooled = StreamProcessor::new(GpuProfile::geforce_7800());
        pooled.arena().set_enabled(true);
        pooled.arena().set_elision(false);
        let input = workloads::generate(dist, n, seed);
        // Two runs so the second consumes recycled (cleared-and-refilled)
        // buffers.
        sorter.sort_run(&mut pooled, &input).expect("warm-up sort");
        let run = sorter.sort_run(&mut pooled, &input).expect("pooled sort");
        let (ref_out, ref_counters, ref_sim) = reference_run(&sorter, &input);
        prop_assert_eq!(&run.output, &ref_out);
        prop_assert_eq!(&run.counters, &ref_counters);
        prop_assert_eq!(run.sim_time.total_ms, ref_sim);
        prop_assert_eq!(pooled.arena_ref().stats().elided_elements, 0);
    }
}

/// The elision must actually fire: repeated same-class sorts serve every
/// working stream below the write watermark, so the elided-element count
/// grows by the full stream footprint each run.
#[test]
fn steady_state_sorts_elide_the_whole_refill() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    proc.arena().set_enabled(true);
    proc.arena().set_elision(true);
    let input = workloads::uniform(1024, 7);

    sorter.sort_run(&mut proc, &input).expect("warm-up");
    let after_warmup = proc.arena_ref().stats().elided_elements;
    sorter
        .sort_run(&mut proc, &input)
        .expect("steady-state run");
    let per_run = proc.arena_ref().stats().elided_elements - after_warmup;
    // The six uninit working streams of an n=1024 sort: two 2n-node tree
    // streams, two 2n-index pq streams, two n-value scratch streams.
    let expected = 4 * 2 * 1024 + 2 * 1024;
    assert_eq!(
        per_run, expected as u64,
        "a steady-state run must elide every working-stream refill"
    );
}

/// Segmented (batched-service) sorts reuse stale buffers across
/// submissions and stay identical to fresh-allocation segmented runs.
#[test]
fn segmented_runs_with_reuse_are_identical_to_fresh_runs() {
    let sorter = GpuAbiSorter::new(SortConfig::default());
    let mut pooled = StreamProcessor::new(GpuProfile::geforce_7800());
    pooled.arena().set_enabled(true);
    pooled.arena().set_elision(true);
    for (segments, segment_len, seed) in [(4usize, 64usize, 1u64), (8, 32, 2), (2, 256, 3)] {
        let input = workloads::uniform(segments * segment_len, seed);
        let run = sorter
            .sort_segments_run(&mut pooled, &input, segment_len)
            .expect("segmented sort");
        let mut fresh = StreamProcessor::new(GpuProfile::geforce_7800());
        fresh.arena().set_enabled(false);
        fresh.arena().set_elision(false);
        let reference = sorter
            .sort_segments_run(&mut fresh, &input, segment_len)
            .expect("reference segmented sort");
        assert_eq!(run.output, reference.output);
        assert_eq!(run.counters, reference.counters);
        assert_eq!(run.sim_time.total_ms, reference.sim_time.total_ms);
    }
}
