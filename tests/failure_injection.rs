//! Failure-injection tests: the simulator must enforce the architectural
//! restrictions of the paper's target hardware (Sections 3.2, 6.1, 7.1)
//! instead of silently producing wrong results.

use gpu_abisort::prelude::*;
use stream_arch::{BlockSet, GatherView, ReadView, Stream, StreamError, WriteView};

#[test]
fn oversized_streams_are_rejected() {
    let mut profile = GpuProfile::geforce_6800();
    profile.max_texture_dim = 64; // at most 4096 elements per stream
    let proc = StreamProcessor::new(profile.clone());
    assert!(proc.check_stream_size::<Node>(4096).is_ok());
    assert!(matches!(
        proc.check_stream_size::<Node>(4097),
        Err(StreamError::StreamTooLarge { .. })
    ));

    // And the sorter surfaces the same error end to end.
    let mut proc = StreamProcessor::new(profile);
    let input = workloads::uniform(4096, 0); // needs 2n = 8192 node elements
    let err = GpuAbiSorter::new(SortConfig::default())
        .sort(&mut proc, &input)
        .unwrap_err();
    assert!(matches!(err, StreamError::StreamTooLarge { .. }));
}

#[test]
fn per_instance_output_budget_is_enforced() {
    // 9 value/pointer pairs exceed the 16 × 32-bit kernel output limit of
    // Section 7.1 (which is why the paper's local sort stops at 8 pairs).
    let mut proc = StreamProcessor::new(GpuProfile::geforce_6800());
    let mut out: Stream<Value> = Stream::new("out", 32, Layout::Linear);
    let write = WriteView::contiguous(&mut out, 0, 32, 9).unwrap();
    let err = proc
        .launch("too-much-output", 1, |ctx| {
            for slot in 0..9 {
                write.set(ctx, slot, Value::new(slot as f32, 0));
            }
        })
        .unwrap_err();
    assert!(matches!(err, StreamError::KernelOutputTooLarge { .. }));
}

#[test]
fn gather_out_of_bounds_aborts_the_launch() {
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    let trees: Stream<Node> = Stream::new("trees", 8, Layout::ZOrder);
    let mut out: Stream<Node> = Stream::new("out", 8, Layout::ZOrder);
    let gather = GatherView::new(&trees);
    let write = WriteView::contiguous(&mut out, 0, 8, 1).unwrap();
    let err = proc
        .launch("bad-gather", 8, |ctx| {
            // A corrupted child pointer: gather far past the stream end.
            let node = gather.gather(ctx, 1_000_000 + ctx.instance_index());
            write.set(ctx, 0, node);
        })
        .unwrap_err();
    assert!(matches!(err, StreamError::GatherOutOfBounds { .. }));
}

#[test]
fn input_output_aliasing_is_rejected_on_gpu_profiles_only() {
    let strict = StreamProcessor::new(GpuProfile::geforce_6800());
    let relaxed = StreamProcessor::new(GpuProfile::idealized(4));
    let s: Stream<Value> = Stream::new("values", 16, Layout::Linear);
    let inputs = [(s.id(), s.name())];
    let outputs = [(s.id(), s.name())];
    assert!(matches!(
        strict.check_distinct_io(&inputs, &outputs),
        Err(StreamError::InputOutputAliasing { .. })
    ));
    assert!(relaxed.check_distinct_io(&inputs, &outputs).is_ok());
}

#[test]
fn multi_block_substreams_require_hardware_support() {
    let no_multi = StreamProcessor::new(GpuProfile::geforce_6800().with_multi_block(false));
    assert!(no_multi.check_multi_block(1).is_ok());
    assert_eq!(
        no_multi.check_multi_block(3).unwrap_err(),
        StreamError::MultiBlockUnsupported
    );
}

#[test]
fn overlapping_output_blocks_are_rejected() {
    let err = BlockSet::multi(vec![(0, 8), (4, 8)]).unwrap_err();
    assert!(matches!(err, StreamError::OverlappingBlocks { .. }));
}

#[test]
fn substreams_must_stay_within_their_stream() {
    let s: Stream<Value> = Stream::new("values", 16, Layout::Linear);
    let err = match ReadView::contiguous(&s, 8, 16, 1) {
        Err(e) => e,
        Ok(_) => panic!("out-of-bounds read view was accepted"),
    };
    assert!(matches!(err, StreamError::SubStreamOutOfBounds { .. }));
    let mut s2: Stream<Value> = Stream::new("values2", 16, Layout::Linear);
    let err = match WriteView::contiguous(&mut s2, 12, 8, 1) {
        Err(e) => e,
        Ok(_) => panic!("out-of-bounds write view was accepted"),
    };
    assert!(matches!(err, StreamError::SubStreamOutOfBounds { .. }));
}

#[test]
fn input_underflow_and_output_overflow_abort_launches() {
    let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
    let input: Stream<Value> = Stream::new("in", 4, Layout::Linear);
    let mut output: Stream<Value> = Stream::new("out", 4, Layout::Linear);
    {
        let read = ReadView::contiguous(&input, 0, 4, 2).unwrap();
        let write = WriteView::contiguous(&mut output, 0, 4, 2).unwrap();
        // 4 instances × 2 reads = 8 reads from a 4-element substream.
        let err = proc
            .launch("underflow", 4, |ctx| {
                let (a, b) = read.pair(ctx);
                write.pair(ctx, a, b);
            })
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::InputUnderflow { .. } | StreamError::OutputOverflow { .. }
        ));
    }
}

#[test]
fn errors_have_readable_messages() {
    let e = StreamError::StreamTooLarge {
        elements: 10,
        max_elements: 5,
    };
    assert!(e.to_string().contains("maximum stream size"));
    let e = StreamError::KernelOutputTooLarge {
        bytes: 72,
        max_bytes: 64,
    };
    assert!(e.to_string().contains("72"));
    assert!(e.to_string().contains("64"));
}
