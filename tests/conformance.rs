//! Cross-engine differential conformance suite.
//!
//! One harness runs **every sorter in the workspace** over a shared,
//! seeded matrix of key distributions × input sizes and asserts that each
//! engine's output is byte-identical (key bits + id) to `std`'s sort under
//! the library's total order — sorted output is unique under a total
//! order, so any divergence is a bug in the engine, not a tie-break
//! artefact.
//!
//! Engines: the sequential classic and simplified adaptive bitonic sorts,
//! the CPU quicksort baseline, GPU-ABiSort on the stream simulator, the
//! GPUSort / odd-even merge sort / periodic balanced network baselines,
//! the four PRAM sorters, the out-of-core terasort pipeline (via the
//! order-preserving `Value` ↔ `WideRecord` embedding), and the
//! multi-device `ShardedSorter`.
//!
//! The base seed comes from `CONFORMANCE_SEED` (default 2006), so CI can
//! run the whole matrix under several seeds. Per-case seeds are derived
//! from (base seed, distribution, size), keeping every case independent
//! and reproducible.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::keys::{
    encoded_to_record, encoded_to_value, record_to_encoded, value_to_encoded,
};
use gpu_abisort::{abisort, pram, terasort};
use std::cmp::Ordering;

/// A named engine adapter. `max_len` bounds the sizes an engine is asked
/// to sort so the debug-mode suite stays fast: the O(n log² n) networks
/// and the PRAM machine pay a large constant factor per element, and
/// their large-input behaviour is already covered by their own crates'
/// tests — conformance needs their *agreement*, which the capped matrix
/// exercises fully.
type SortFn = Box<dyn Fn(&[Value]) -> Vec<Value>>;

struct EngineCase {
    name: &'static str,
    max_len: usize,
    sort: SortFn,
}

fn engines() -> Vec<EngineCase> {
    let case = |name: &'static str, max_len: usize, sort: SortFn| EngineCase {
        name,
        max_len,
        sort,
    };
    vec![
        case(
            "seq-classic",
            usize::MAX,
            Box::new(|v| {
                abisort::sequential::adaptive_bitonic_sort_with(v, abisort::MergeVariant::Classic).0
            }),
        ),
        case(
            "seq-simplified",
            usize::MAX,
            Box::new(|v| {
                abisort::sequential::adaptive_bitonic_sort_with(
                    v,
                    abisort::MergeVariant::Simplified,
                )
                .0
            }),
        ),
        case(
            "cpu-quicksort",
            usize::MAX,
            Box::new(|v| CpuSorter.sort(v).0),
        ),
        case(
            "gpu-abisort",
            usize::MAX,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuAbiSorter::new(SortConfig::default())
                    .sort(&mut proc, v)
                    .expect("gpu-abisort failed")
            }),
        ),
        case(
            "gpusort",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuSortBaseline::new()
                    .sort(&mut proc, v)
                    .expect("gpusort failed")
                    .output
            }),
        ),
        case(
            "oems",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                OddEvenMergeSort::new()
                    .sort(&mut proc, v)
                    .expect("oems failed")
                    .output
            }),
        ),
        case(
            "pbsn",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                PeriodicBalancedSort::new()
                    .sort(&mut proc, v)
                    .expect("pbsn failed")
                    .output
            }),
        ),
        case(
            "pram-abisort",
            4096,
            Box::new(|v| {
                pram::sorters::abisort_pram::sort(v)
                    .expect("pram-abisort failed")
                    .output
            }),
        ),
        case(
            "pram-bitonic",
            4096,
            Box::new(|v| {
                pram::sorters::bitonic_network::sort(v)
                    .expect("pram-bitonic failed")
                    .output
            }),
        ),
        case(
            "pram-oem",
            4096,
            Box::new(|v| {
                pram::sorters::oem_network::sort(v)
                    .expect("pram-oem failed")
                    .output
            }),
        ),
        case(
            "pram-rank",
            4096,
            Box::new(|v| {
                pram::sorters::rank_merge::sort(v)
                    .expect("pram-rank failed")
                    .output
            }),
        ),
        case(
            "terasort",
            usize::MAX,
            Box::new(|v| {
                if v.len() <= 1 {
                    return v.to_vec();
                }
                let mut disk = SimulatedDisk::new(terasort::DiskProfile::hdd_2006());
                let input = disk.create("conformance-input");
                let records: Vec<terasort::WideRecord> = v
                    .iter()
                    .map(|v| encoded_to_record(value_to_encoded(v), v.id as u64))
                    .collect();
                disk.append(input, &records);
                let report = TeraSorter::new(TeraSortConfig {
                    run_size: 2048,
                    ..TeraSortConfig::default()
                })
                .sort(&mut disk, input)
                .expect("terasort failed");
                disk.read_all(report.output)
                    .iter()
                    .map(|r| encoded_to_value(record_to_encoded(r)))
                    .collect()
            }),
        ),
        case(
            "sharded-gpu",
            usize::MAX,
            Box::new(|v| {
                let mut pool: Vec<StreamProcessor> = (0..4)
                    .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
                    .collect();
                ShardedSorter::new(ShardedConfig::default())
                    .sort_run(&mut pool, v)
                    .expect("sharded sort failed")
                    .output
            }),
        ),
    ]
}

fn base_seed() -> u64 {
    std::env::var("CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2006)
}

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::NearlySorted { swaps: 16 },
        Distribution::FewDistinct { distinct: 4 },
        Distribution::OrganPipe,
        Distribution::Constant,
    ]
}

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

/// Run every engine over the given sizes, asserting byte-identical
/// agreement with the `std` sort for each (distribution, size) cell.
fn run_matrix(sizes: &[usize]) {
    let seed = base_seed();
    let engines = engines();
    for (d, dist) in distributions().into_iter().enumerate() {
        for &n in sizes {
            // Independent, reproducible per-cell seed.
            let cell_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((d as u64) << 32)
                .wrapping_add(n as u64);
            let input = workloads::generate(dist, n, cell_seed);
            let mut expected = input.clone();
            expected.sort();
            let expected_bits = bits(&expected);
            for engine in &engines {
                if n > engine.max_len {
                    continue;
                }
                let got = (engine.sort)(&input);
                assert_eq!(
                    bits(&got),
                    expected_bits,
                    "{} diverges from std sort on {} n={n} seed={cell_seed}",
                    engine.name,
                    dist.name(),
                );
            }
        }
    }
}

/// The full small-size matrix: the empty input, the one- and two-element
/// edges, a non-power-of-two size, and a ~1k mid size — for every engine.
#[test]
fn all_engines_agree_on_the_small_matrix() {
    run_matrix(&[0, 1, 2, 37, 1000]);
}

/// A non-power-of-two mid size that forces multi-level padding in every
/// power-of-two engine.
#[test]
fn all_engines_agree_on_non_power_of_two_inputs() {
    run_matrix(&[1023, 2049]);
}

/// The 10k tier: engines without a debug-runtime cap (both sequential
/// variants, the CPU baseline, GPU-ABiSort, terasort, ShardedSorter) over
/// every distribution.
#[test]
fn uncapped_engines_agree_at_ten_k() {
    run_matrix(&[10_000]);
}

// ---------------------------------------------------------------------------
// Typed conformance: every `SortKey` codec, sorted through the service, must
// agree with `std` sorting the *decoded* domain under the type's native total
// order. Divergence here means the codec broke order-isomorphism somewhere
// between encode, the engines, and decode.
// ---------------------------------------------------------------------------

/// Sizes for the typed matrix: empty, singleton, pair, odd, and a size that
/// exercises real bitonic recursion depth.
const TYPED_SIZES: [usize; 5] = [0, 1, 2, 37, 1000];

fn typed_matrix<K, D, C>(client: &TypedSortClient, name: &str, derive: D, native: C)
where
    K: SortKey + Clone + std::fmt::Debug,
    D: Fn(&Value) -> K,
    C: Fn(&K, &K) -> Ordering + Copy,
{
    for (d, dist) in distributions().into_iter().enumerate() {
        for &n in &TYPED_SIZES {
            let cell_seed = base_seed()
                .wrapping_mul(999_983)
                .wrapping_add((d as u64) << 32)
                .wrapping_add(n as u64);
            let keys: Vec<K> = workloads::generate(dist, n, cell_seed)
                .iter()
                .map(&derive)
                .collect();

            let mut expected = keys.clone();
            expected.sort_by(|a, b| native(a, b));
            // Equal keys decode identically, so comparing encodings is exact
            // even for duplicate-heavy inputs (and sidesteps NaN != NaN).
            let want: Vec<u64> = expected.iter().map(SortKey::encode).collect();

            let result = client.submit_keys(&keys).expect("typed sort");
            let got: Vec<u64> = result.keys.iter().map(SortKey::encode).collect();
            assert_eq!(
                got, want,
                "typed `{name}` diverges from std sort on {dist:?} n={n}"
            );

            if n > 1 {
                let k = (n / 3).max(1);
                let top = client.submit_top_k(&keys, k).expect("typed top-k");
                let got_k: Vec<u64> = top.keys.iter().map(SortKey::encode).collect();
                assert_eq!(
                    got_k,
                    want[..k],
                    "typed `{name}` top-{k} != sorted prefix on {dist:?} n={n}"
                );
            }
        }
    }
}

fn str_key_from_bits(bits: u32) -> StrKey {
    let len = (bits % 9) as usize; // 0..=8 covers empty through max-length.
    let s: String = (0..len)
        .map(|i| (b'a' + ((bits >> (3 * i)) & 0x0f) as u8) as char)
        .collect();
    StrKey::new(&s).expect("generated string fits the inline prefix")
}

#[test]
fn typed_sorts_agree_with_std_sort_on_the_decoded_domain() {
    let client = TypedSortClient::new(ServiceConfig::default());

    typed_matrix(
        &client,
        "u64",
        |v| v.key.to_bits() as u64,
        |a: &u64, b| a.cmp(b),
    );
    typed_matrix(&client, "u32", |v| v.key.to_bits(), |a: &u32, b| a.cmp(b));
    typed_matrix(
        &client,
        "i64",
        |v| (v.key.to_bits() as i64).wrapping_mul(37) - (1 << 40),
        |a: &i64, b| a.cmp(b),
    );
    typed_matrix(&client, "f32", |v| v.key, |a: &f32, b| a.total_cmp(b));
    typed_matrix(
        &client,
        "f64",
        |v| v.key as f64,
        |a: &f64, b| a.total_cmp(b),
    );
    typed_matrix(
        &client,
        "(u16,i32)",
        |v| ((v.key.to_bits() >> 16) as u16, v.id as i32 - 500),
        |a: &(u16, i32), b| a.cmp(b),
    );
    typed_matrix(
        &client,
        "strkey",
        |v| str_key_from_bits(v.key.to_bits()),
        |a: &StrKey, b| a.as_str().cmp(b.as_str()),
    );
}

#[test]
fn typed_float_specials_sort_in_ieee_total_order() {
    let client = TypedSortClient::new(ServiceConfig::default());

    let f32s = vec![
        f32::NAN,
        f32::NEG_INFINITY,
        f32::INFINITY,
        -0.0_f32,
        0.0_f32,
        -f32::NAN,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1.5,
        -1.5,
        f32::MAX,
        f32::MIN,
    ];
    let result = client.submit_keys(&f32s).expect("f32 specials");
    let mut want = f32s.clone();
    want.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(
        result.keys.iter().map(|k| k.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|k| k.to_bits()).collect::<Vec<_>>(),
        "f32 specials out of IEEE total order"
    );

    let f64s = vec![
        f64::NAN,
        f64::NEG_INFINITY,
        f64::INFINITY,
        -0.0_f64,
        0.0_f64,
        -f64::NAN,
        f64::MIN_POSITIVE,
        1e-300,
        -1e300,
        f64::MAX,
        f64::MIN,
    ];
    let result = client.submit_keys(&f64s).expect("f64 specials");
    let mut want = f64s.clone();
    want.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(
        result.keys.iter().map(|k| k.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|k| k.to_bits()).collect::<Vec<_>>(),
        "f64 specials out of IEEE total order"
    );
}
