//! Cross-engine differential conformance suite.
//!
//! One harness runs **every sorter in the workspace** over a shared,
//! seeded matrix of key distributions × input sizes and asserts that each
//! engine's output is byte-identical (key bits + id) to `std`'s sort under
//! the library's total order — sorted output is unique under a total
//! order, so any divergence is a bug in the engine, not a tie-break
//! artefact.
//!
//! Engines: the sequential classic and simplified adaptive bitonic sorts,
//! the CPU quicksort baseline, GPU-ABiSort on the stream simulator, the
//! GPUSort / odd-even merge sort / periodic balanced network baselines,
//! the four PRAM sorters, the out-of-core terasort pipeline (via the
//! order-preserving `Value` ↔ `WideRecord` embedding), and the
//! multi-device `ShardedSorter`.
//!
//! The base seed comes from `CONFORMANCE_SEED` (default 2006), so CI can
//! run the whole matrix under several seeds. Per-case seeds are derived
//! from (base seed, distribution, size), keeping every case independent
//! and reproducible.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::batch::{record_to_value, value_to_record};
use gpu_abisort::{abisort, pram, terasort};

/// A named engine adapter. `max_len` bounds the sizes an engine is asked
/// to sort so the debug-mode suite stays fast: the O(n log² n) networks
/// and the PRAM machine pay a large constant factor per element, and
/// their large-input behaviour is already covered by their own crates'
/// tests — conformance needs their *agreement*, which the capped matrix
/// exercises fully.
type SortFn = Box<dyn Fn(&[Value]) -> Vec<Value>>;

struct EngineCase {
    name: &'static str,
    max_len: usize,
    sort: SortFn,
}

fn engines() -> Vec<EngineCase> {
    let case = |name: &'static str, max_len: usize, sort: SortFn| EngineCase {
        name,
        max_len,
        sort,
    };
    vec![
        case(
            "seq-classic",
            usize::MAX,
            Box::new(|v| {
                abisort::sequential::adaptive_bitonic_sort_with(v, abisort::MergeVariant::Classic).0
            }),
        ),
        case(
            "seq-simplified",
            usize::MAX,
            Box::new(|v| {
                abisort::sequential::adaptive_bitonic_sort_with(
                    v,
                    abisort::MergeVariant::Simplified,
                )
                .0
            }),
        ),
        case(
            "cpu-quicksort",
            usize::MAX,
            Box::new(|v| CpuSorter.sort(v).0),
        ),
        case(
            "gpu-abisort",
            usize::MAX,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuAbiSorter::new(SortConfig::default())
                    .sort(&mut proc, v)
                    .expect("gpu-abisort failed")
            }),
        ),
        case(
            "gpusort",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                GpuSortBaseline::new()
                    .sort(&mut proc, v)
                    .expect("gpusort failed")
                    .output
            }),
        ),
        case(
            "oems",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                OddEvenMergeSort::new()
                    .sort(&mut proc, v)
                    .expect("oems failed")
                    .output
            }),
        ),
        case(
            "pbsn",
            4096,
            Box::new(|v| {
                let mut proc = StreamProcessor::new(GpuProfile::geforce_7800());
                PeriodicBalancedSort::new()
                    .sort(&mut proc, v)
                    .expect("pbsn failed")
                    .output
            }),
        ),
        case(
            "pram-abisort",
            4096,
            Box::new(|v| {
                pram::sorters::abisort_pram::sort(v)
                    .expect("pram-abisort failed")
                    .output
            }),
        ),
        case(
            "pram-bitonic",
            4096,
            Box::new(|v| {
                pram::sorters::bitonic_network::sort(v)
                    .expect("pram-bitonic failed")
                    .output
            }),
        ),
        case(
            "pram-oem",
            4096,
            Box::new(|v| {
                pram::sorters::oem_network::sort(v)
                    .expect("pram-oem failed")
                    .output
            }),
        ),
        case(
            "pram-rank",
            4096,
            Box::new(|v| {
                pram::sorters::rank_merge::sort(v)
                    .expect("pram-rank failed")
                    .output
            }),
        ),
        case(
            "terasort",
            usize::MAX,
            Box::new(|v| {
                if v.len() <= 1 {
                    return v.to_vec();
                }
                let mut disk = SimulatedDisk::new(terasort::DiskProfile::hdd_2006());
                let input = disk.create("conformance-input");
                let records: Vec<terasort::WideRecord> = v.iter().map(value_to_record).collect();
                disk.append(input, &records);
                let report = TeraSorter::new(TeraSortConfig {
                    run_size: 2048,
                    ..TeraSortConfig::default()
                })
                .sort(&mut disk, input)
                .expect("terasort failed");
                disk.read_all(report.output)
                    .iter()
                    .map(record_to_value)
                    .collect()
            }),
        ),
        case(
            "sharded-gpu",
            usize::MAX,
            Box::new(|v| {
                let mut pool: Vec<StreamProcessor> = (0..4)
                    .map(|_| StreamProcessor::new(GpuProfile::geforce_7800()))
                    .collect();
                ShardedSorter::new(ShardedConfig::default())
                    .sort_run(&mut pool, v)
                    .expect("sharded sort failed")
                    .output
            }),
        ),
    ]
}

fn base_seed() -> u64 {
    std::env::var("CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2006)
}

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::Reverse,
        Distribution::NearlySorted { swaps: 16 },
        Distribution::FewDistinct { distinct: 4 },
        Distribution::OrganPipe,
        Distribution::Constant,
    ]
}

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

/// Run every engine over the given sizes, asserting byte-identical
/// agreement with the `std` sort for each (distribution, size) cell.
fn run_matrix(sizes: &[usize]) {
    let seed = base_seed();
    let engines = engines();
    for (d, dist) in distributions().into_iter().enumerate() {
        for &n in sizes {
            // Independent, reproducible per-cell seed.
            let cell_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((d as u64) << 32)
                .wrapping_add(n as u64);
            let input = workloads::generate(dist, n, cell_seed);
            let mut expected = input.clone();
            expected.sort();
            let expected_bits = bits(&expected);
            for engine in &engines {
                if n > engine.max_len {
                    continue;
                }
                let got = (engine.sort)(&input);
                assert_eq!(
                    bits(&got),
                    expected_bits,
                    "{} diverges from std sort on {} n={n} seed={cell_seed}",
                    engine.name,
                    dist.name(),
                );
            }
        }
    }
}

/// The full small-size matrix: the empty input, the one- and two-element
/// edges, a non-power-of-two size, and a ~1k mid size — for every engine.
#[test]
fn all_engines_agree_on_the_small_matrix() {
    run_matrix(&[0, 1, 2, 37, 1000]);
}

/// A non-power-of-two mid size that forces multi-level padding in every
/// power-of-two engine.
#[test]
fn all_engines_agree_on_non_power_of_two_inputs() {
    run_matrix(&[1023, 2049]);
}

/// The 10k tier: engines without a debug-runtime cap (both sequential
/// variants, the CPU baseline, GPU-ABiSort, terasort, ShardedSorter) over
/// every distribution.
#[test]
fn uncapped_engines_agree_at_ten_k() {
    run_matrix(&[10_000]);
}
