//! Property-based tests (proptest) on the extension crates:
//!
//! * every PRAM sorter returns a sorted permutation of arbitrary inputs,
//!   and the adaptive bitonic sort does so without ever violating EREW
//!   exclusivity;
//! * the PRAM adaptive bitonic sort performs exactly the comparisons of the
//!   sequential reference, independent of the schedule;
//! * the out-of-core pipeline sorts arbitrary wide-record tables for every
//!   in-core sorter, with run sizes that do not divide the table size;
//! * the disk cost model is additive and monotone in the transferred bytes.

use gpu_abisort::pram::sorters::{abisort_pram, bitonic_network, rank_merge};
use gpu_abisort::pram::PramModel;
use gpu_abisort::prelude::*;
use gpu_abisort::terasort::{
    disk::{DiskProfile, SimulatedDisk},
    pipeline::{TeraSortConfig, TeraSorter},
    record::{self, WideRecord},
};
use proptest::collection::vec;
use proptest::prelude::*;

fn value_inputs(max_len: usize) -> impl Strategy<Value = Vec<Value>> {
    vec(
        prop_oneof![
            8 => -1.0e6f32..1.0e6f32,
            1 => Just(0.0f32),
            1 => Just(f32::NAN),
        ],
        0..max_len,
    )
    .prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| Value::new(k, i as u32))
            .collect()
    })
}

fn wide_records(max_len: usize) -> impl Strategy<Value = Vec<WideRecord>> {
    // Keys drawn from a small byte alphabet so prefix ties are common and
    // the reorder stage is genuinely exercised.
    vec(vec(0u8..4u8, 10), 0..max_len).prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| {
                let mut key = [0u8; 10];
                key.copy_from_slice(&k);
                WideRecord::new(key, i as u64)
            })
            .collect()
    })
}

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

fn std_sorted(values: &[Value]) -> Vec<Value> {
    let mut v = values.to_vec();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pram_abisort_matches_std_sort_and_stays_erew(input in value_inputs(500)) {
        let run = abisort_pram::sort(&input).unwrap();
        prop_assert_eq!(bits(&run.output), bits(&std_sorted(&input)));
        prop_assert_eq!(run.stats.conflicts(PramModel::Erew), 0);
    }

    #[test]
    fn pram_bitonic_network_matches_std_sort(input in value_inputs(400)) {
        let run = bitonic_network::sort(&input).unwrap();
        prop_assert_eq!(bits(&run.output), bits(&std_sorted(&input)));
    }

    #[test]
    fn pram_rank_merge_matches_std_sort(input in value_inputs(400)) {
        let run = rank_merge::sort(&input).unwrap();
        prop_assert_eq!(bits(&run.output), bits(&std_sorted(&input)));
        prop_assert_eq!(run.stats.write_conflicts, 0);
    }

    #[test]
    fn pram_schedules_agree_and_match_sequential_comparisons(input in value_inputs(300)) {
        let overlapped = abisort_pram::sort_with_schedule(&input, abisort_pram::Schedule::Overlapped).unwrap();
        let sequential = abisort_pram::sort_with_schedule(&input, abisort_pram::Schedule::SequentialStages).unwrap();
        prop_assert_eq!(bits(&overlapped.output), bits(&sequential.output));
        prop_assert_eq!(overlapped.stats.comparisons(), sequential.stats.comparisons());
        let (_, seq_stats) = gpu_abisort::abisort::sequential::adaptive_bitonic_sort_with(
            &input,
            MergeVariant::Simplified,
        );
        prop_assert_eq!(overlapped.stats.comparisons(), seq_stats.comparisons);
    }

    #[test]
    fn pram_brent_time_is_monotone_in_processors(input in value_inputs(300)) {
        prop_assume!(input.len() > 1);
        let run = abisort_pram::sort(&input).unwrap();
        let mut last = u64::MAX;
        for p in [1u64, 2, 4, 16, 64, 1 << 20] {
            let t = run.stats.brent_time(p);
            prop_assert!(t <= last, "Brent time increased from {last} to {t} at p={p}");
            last = t;
        }
    }

    #[test]
    fn out_of_core_pipeline_sorts_arbitrary_tables(
        records in wide_records(600),
        run_size in 16usize..200,
    ) {
        let mut disk = SimulatedDisk::new(DiskProfile::ideal());
        let input = disk.create("t");
        disk.append(input, &records);
        let config = TeraSortConfig {
            run_size,
            core_sorter: CoreSorter::GpuAbiSort(SortConfig::default()),
            ..TeraSortConfig::default()
        };
        let report = TeraSorter::new(config).sort(&mut disk, input).unwrap();
        let sorted = disk.read_all(report.output);
        prop_assert!(record::is_sorted(&sorted));
        prop_assert!(record::is_permutation(&records, &sorted));
        prop_assert_eq!(report.records, records.len());
        if !records.is_empty() {
            prop_assert_eq!(report.runs, records.len().div_ceil(run_size));
        }
    }

    #[test]
    fn cpu_and_gpu_pipelines_agree_on_arbitrary_tables(records in wide_records(300)) {
        let mut outputs = Vec::new();
        for core_sorter in [CoreSorter::GpuAbiSort(SortConfig::default()), CoreSorter::CpuQuicksort] {
            let mut disk = SimulatedDisk::new(DiskProfile::ideal());
            let input = disk.create("t");
            disk.append(input, &records);
            let config = TeraSortConfig { run_size: 64, core_sorter, ..TeraSortConfig::default() };
            let report = TeraSorter::new(config).sort(&mut disk, input).unwrap();
            outputs.push(disk.read_all(report.output));
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
    }

    #[test]
    fn disk_model_charges_seek_plus_bandwidth_additively(
        chunks in vec(1usize..2000, 1..8),
    ) {
        let profile = DiskProfile::hdd_2006();
        let mut disk = SimulatedDisk::new(profile);
        let file = disk.create("f");
        let mut expected_ms = 0.0;
        for (i, &len) in chunks.iter().enumerate() {
            let records = record::generate(len, i as u64);
            disk.append(file, &records);
            expected_ms += profile.request_ms(len as u64 * record::RECORD_BYTES);
        }
        let stats = disk.stats();
        prop_assert_eq!(stats.write_requests, chunks.len() as u64);
        prop_assert!((stats.io_time_ms - expected_ms).abs() < 1e-9);
        prop_assert_eq!(
            stats.bytes_written,
            chunks.iter().map(|&l| l as u64 * record::RECORD_BYTES).sum::<u64>()
        );
    }

    #[test]
    fn padding_never_changes_the_sorted_prefix(input in value_inputs(500)) {
        // Sorting the first k elements directly must equal truncating the
        // sort of any longer input restricted to those elements — i.e. the
        // padding sentinels never leak into the output.
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let out = GpuAbiSorter::new(SortConfig::default()).sort(&mut gpu, &input).unwrap();
        prop_assert_eq!(out.len(), input.len());
        prop_assert_eq!(bits(&out), bits(&std_sorted(&input)));
    }
}
