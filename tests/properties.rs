//! Property-based tests (proptest) on the core invariants:
//!
//! * every sorter returns a sorted permutation of its input, for arbitrary
//!   lengths and key distributions (including NaN, ±0.0 and duplicates);
//! * the adaptive bitonic merge sorts arbitrary bitonic inputs and agrees
//!   between the classic and simplified variants;
//! * the Z-order mapping propositions of Section 6.2.2 hold for arbitrary
//!   indices;
//! * the Table-1 blocks of one overlapped step never overlap.

use abisort::stream_sort::layout_plan::{overlapped_schedule, table1_pair_block};
use abisort::{adaptive_bitonic_merge, MergeVariant, SortConfig};
use gpu_abisort::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use stream_arch::{Mapping1Dto2D, ZOrder2D};

fn value_strategy() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -1.0e6f32..1.0e6f32,
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::NAN),
    ]
}

fn input_strategy(max_len: usize) -> impl Strategy<Value = Vec<Value>> {
    vec(value_strategy(), 0..max_len).prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| Value::new(k, i as u32))
            .collect()
    })
}

fn std_sorted(values: &[Value]) -> Vec<Value> {
    let mut v = values.to_vec();
    v.sort();
    v
}

/// Bit-exact representation for comparisons: `Value`'s `PartialEq` compares
/// keys with `==`, under which NaN != NaN, so equality of sorted outputs is
/// checked on the raw bits instead.
fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_adaptive_bitonic_sort_matches_std_sort(input in input_strategy(600)) {
        prop_assert_eq!(bits(&abisort::adaptive_bitonic_sort(&input)), bits(&std_sorted(&input)));
    }

    #[test]
    fn gpu_abisort_matches_std_sort(input in input_strategy(400)) {
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let out = GpuAbiSorter::new(SortConfig::default()).sort(&mut gpu, &input).unwrap();
        prop_assert_eq!(bits(&out), bits(&std_sorted(&input)));
    }

    #[test]
    fn gpu_abisort_unoptimized_matches_std_sort(input in input_strategy(300)) {
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_6800());
        let out = GpuAbiSorter::new(SortConfig::unoptimized()).sort(&mut gpu, &input).unwrap();
        prop_assert_eq!(bits(&out), bits(&std_sorted(&input)));
    }

    #[test]
    fn network_baselines_match_std_sort(input in input_strategy(300)) {
        let expected = bits(&std_sorted(&input));
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        prop_assert_eq!(bits(&GpuSortBaseline::new().sort(&mut gpu, &input).unwrap().output), expected.clone());
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        prop_assert_eq!(bits(&OddEvenMergeSort::new().sort(&mut gpu, &input).unwrap().output), expected.clone());
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        prop_assert_eq!(bits(&PeriodicBalancedSort::new().sort(&mut gpu, &input).unwrap().output), expected);
    }

    #[test]
    fn cpu_baseline_matches_std_sort(input in input_strategy(2000)) {
        let (out, _) = CpuSorter.sort(&input);
        prop_assert_eq!(bits(&out), bits(&std_sorted(&input)));
    }

    #[test]
    fn adaptive_merge_sorts_bitonic_inputs(
        keys in vec(-1.0e6f32..1.0e6f32, 2..256),
        rotation in 0usize..256,
        ascending in proptest::bool::ANY,
    ) {
        // Build a bitonic sequence: sort, split at an arbitrary point, and
        // rotate (a rotation of ascending-then-descending stays bitonic).
        let n = keys.len().next_power_of_two();
        let mut keys = keys;
        keys.resize(n, 0.5);
        let mut values: Vec<Value> = keys.iter().enumerate()
            .map(|(i, &k)| Value::new(k, i as u32)).collect();
        values.sort();
        let split = rotation % n;
        values[split..].reverse();
        let rot = rotation % n;
        values.rotate_left(rot);

        let (merged, _) = adaptive_bitonic_merge(&values, ascending, MergeVariant::Simplified);
        let mut expected = values.clone();
        expected.sort();
        if !ascending {
            expected.reverse();
        }
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn classic_and_simplified_merge_agree(keys in vec(-1.0e3f32..1.0e3f32, 2..128)) {
        let n = keys.len().next_power_of_two();
        let mut keys = keys;
        keys.resize(n, 0.0);
        let mut values: Vec<Value> = keys.iter().enumerate()
            .map(|(i, &k)| Value::new(k, i as u32)).collect();
        let half = n / 2;
        values[..half].sort();
        values[half..].sort_by(|a, b| b.cmp(a));
        let (a, sa) = adaptive_bitonic_merge(&values, true, MergeVariant::Classic);
        let (b, sb) = adaptive_bitonic_merge(&values, true, MergeVariant::Simplified);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa.comparisons, sb.comparisons);
    }

    #[test]
    fn z_order_propositions_hold_for_arbitrary_indices(a in 0usize..(1 << 24), log_s in 0u32..24) {
        let m = ZOrder2D;
        // Round trip.
        let (x, y) = m.to_2d(a);
        prop_assert_eq!(m.from_2d(x, y), a);
        // Doubling proposition.
        let (dx, dy) = m.to_2d(2 * a);
        prop_assert_eq!((dx, dy), (2 * y, x));
        // Offset proposition for a < s.
        let s = 1usize << log_s;
        if a < s {
            let (sx, sy) = m.to_2d(s);
            prop_assert_eq!(m.to_2d(s + a), (sx + x, sy + y));
        }
    }

    #[test]
    fn overlapped_step_blocks_never_overlap(j in 1u32..14, log_extra in 0u32..4) {
        let num_trees = 1usize << log_extra;
        for step in overlapped_schedule(j, 0) {
            for a in 0..step.len() {
                for b in (a + 1)..step.len() {
                    let (s1, l1) = table1_pair_block(step[a].stage, step[a].phase, num_trees);
                    let (s2, l2) = table1_pair_block(step[b].stage, step[b].phase, num_trees);
                    prop_assert!(s1 + l1 <= s2 || s2 + l2 <= s1);
                }
            }
        }
    }

    #[test]
    fn sort_is_stable_under_repetition(input in input_strategy(200)) {
        // Sorting an already-sorted sequence is the identity.
        let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
        let sorter = GpuAbiSorter::new(SortConfig::default());
        let once = sorter.sort(&mut gpu, &input).unwrap();
        let twice = sorter.sort(&mut gpu, &once).unwrap();
        prop_assert_eq!(bits(&once), bits(&twice));
    }
}
