//! End-to-end tests of the networked front-end over real loopback TCP:
//! wire results must be byte-identical to the in-process service, overload
//! must surface as typed reject frames (not dropped connections), protocol
//! violations must kill only the offending connection, and the liveness
//! probes must round-trip.

use gpu_abisort::prelude::*;
use gpu_abisort::sortsvc::net::{
    ErrorCode, ErrorPayload, Frame, FramePoll, FrameReader, FrameType, JobReply, PayloadEncoding,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

fn bits(values: &[Value]) -> Vec<(u32, u32)> {
    values.iter().map(|v| (v.key.to_bits(), v.id)).collect()
}

/// Wire results must be byte-identical to running the very same jobs
/// through an in-process [`SortService`] — several concurrent clients,
/// both payload encodings.
#[test]
fn wire_results_match_the_in_process_service_bit_for_bit() {
    let server = SortServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    // The in-process reference: same request mixes, same seeds.
    let reference_service = SortService::new(ServiceConfig::default());

    let clients = 3usize;
    let jobs_per_client = 10usize;
    std::thread::scope(|scope| {
        let reference_service = &reference_service;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let tenant = c as u32;
                    let requests = RequestMix::connection_driven(jobs_per_client)
                        .generate(990 + tenant as u64);
                    // Odd tenants speak JSON, even tenants RAW_LE.
                    let encoding = if c % 2 == 0 {
                        PayloadEncoding::RawLe
                    } else {
                        PayloadEncoding::Json
                    };

                    // In-process reference run of the identical jobs.
                    let ref_jobs: Vec<SortJob> = requests
                        .iter()
                        .enumerate()
                        .map(|(i, r)| SortJob::new(i as u64, tenant, r.values.clone()))
                        .collect();
                    let ref_report = reference_service
                        .process(ref_jobs)
                        .expect("reference service run");
                    assert!(ref_report.rejected.is_empty());

                    let mut client = SortClient::connect_with(
                        addr,
                        ClientConfig {
                            tenant,
                            encoding,
                            ..ClientConfig::default()
                        },
                    )
                    .expect("connect");
                    let tickets: Vec<_> = requests
                        .into_iter()
                        .map(|r| client.submit(r.values).expect("submit"))
                        .collect();
                    client.flush().expect("flush");

                    for (ticket, reference) in tickets.iter().zip(&ref_report.results) {
                        let reply = ticket.wait_timeout(REPLY_TIMEOUT).expect("reply");
                        let sorted = match reply {
                            JobReply::Sorted(values) => values,
                            JobReply::Rejected { code, .. } => {
                                panic!("job {} rejected with {code}", ticket.job_id())
                            }
                        };
                        assert_eq!(
                            bits(&sorted),
                            bits(&reference.output),
                            "tenant {tenant} job {} ({}) differs from the in-process run",
                            ticket.job_id(),
                            encoding.name(),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, clients as u64);
    assert_eq!(stats.service.jobs_completed, clients * jobs_per_client);
    assert_eq!(stats.service.jobs_rejected, 0);
}

/// Overload surfaces as typed `REJECT` frames with retry hints, never as a
/// dropped connection: a server with a single pending-job slot answers
/// every job of a deep pipeline, marking the overflow retryable.
#[test]
fn overload_returns_typed_rejects_and_keeps_the_connection_alive() {
    let config = ServerConfig {
        // One pending job at a time: everything behind it in a burst is
        // turned away at the wire with SERVER_BUSY.
        max_pending_jobs: 1,
        ..ServerConfig::default()
    };
    let server = SortServer::start("127.0.0.1:0", config).expect("bind");
    let mut client = SortClient::connect(server.local_addr()).expect("connect");

    let burst = 24usize;
    let tickets: Vec<_> = (0..burst)
        .map(|i| {
            client
                .submit(workloads::uniform(256, i as u64))
                .expect("submit")
        })
        .collect();
    client.flush().expect("flush");

    let (mut completed, mut rejected) = (0usize, 0usize);
    for ticket in &tickets {
        match ticket
            .wait_timeout(REPLY_TIMEOUT)
            .expect("every job answered")
        {
            JobReply::Sorted(values) => {
                assert_eq!(values.len(), 256);
                completed += 1;
            }
            JobReply::Rejected {
                code,
                retry_after_ms,
            } => {
                assert!(code.is_retryable(), "overload reject must be retryable");
                assert!(!code.is_connection_fatal());
                assert!(retry_after_ms > 0, "overload reject must carry a back-off");
                rejected += 1;
            }
        }
    }
    assert_eq!(completed + rejected, burst);
    assert!(completed >= 1, "the slot holder must complete");
    assert!(rejected >= 1, "a 24-deep burst into 1 slot must overflow");

    // The connection survived the rejects: a fresh job still round-trips.
    let ticket = client.submit(workloads::uniform(64, 99)).expect("submit");
    client.flush().expect("flush");
    let reply = ticket.wait_timeout(REPLY_TIMEOUT).expect("post-reject job");
    assert!(matches!(
        reply,
        JobReply::Sorted(_) | JobReply::Rejected { .. }
    ));

    drop(client);
    let stats = server.shutdown();
    assert!(stats.wire_rejects >= 1);
    assert_eq!(stats.fatal_errors, 0);
}

/// A protocol violation gets a typed `ERROR` frame and a close — and only
/// for the offending connection; a well-behaved neighbour keeps working.
#[test]
fn malformed_bytes_kill_only_the_offending_connection() {
    let server = SortServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    // A well-behaved client connects first.
    let mut good = SortClient::connect(addr).expect("connect good client");

    // The offender writes an HTTP request at the sort server.
    let mut bad = TcpStream::connect(addr).expect("connect raw");
    bad.write_all(b"GET / HTTP/1.1\r\nHost: sortsvc\r\n\r\n")
        .expect("write garbage");
    bad.set_read_timeout(Some(REPLY_TIMEOUT)).expect("timeout");
    let mut reader = FrameReader::new(1 << 20);
    let frame = loop {
        match reader.poll(&mut bad).expect("server answers with a frame") {
            FramePoll::Frame(f) => break f,
            FramePoll::WouldBlock => continue,
            FramePoll::Eof => panic!("connection closed without an ERROR frame"),
        }
    };
    assert_eq!(frame.frame_type, FrameType::Error);
    let error = ErrorPayload::decode(&frame.payload).expect("typed error payload");
    assert_eq!(error.code, ErrorCode::BadMagic);
    assert!(error.code.is_connection_fatal());
    // After the ERROR frame the server closes the connection.
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "ERROR must be the final frame");

    // The neighbour is unaffected.
    let ticket = good.submit(workloads::uniform(128, 5)).expect("submit");
    good.flush().expect("flush");
    let sorted = ticket
        .wait_timeout(REPLY_TIMEOUT)
        .expect("reply")
        .sorted()
        .expect("completed");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    drop(good);
    let stats = server.shutdown();
    assert_eq!(stats.fatal_errors, 1);
    assert_eq!(stats.service.jobs_completed, 1);
}

/// An oversized length prefix is refused from the header alone with
/// `FRAME_OVERSIZED` — the server never allocates the claimed payload.
#[test]
fn oversized_frames_are_refused_with_a_typed_error() {
    let server = SortServer::start(
        "127.0.0.1:0",
        ServerConfig {
            max_frame_bytes: 1 << 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut conn = TcpStream::connect(server.local_addr()).expect("connect raw");
    // A syntactically valid header claiming a 1 GiB payload.
    let mut huge = Frame::new(FrameType::Submit, Vec::new()).encode();
    huge[8..12].copy_from_slice(&(1u32 << 30).to_le_bytes());
    conn.write_all(&huge).expect("write header");
    conn.set_read_timeout(Some(REPLY_TIMEOUT)).expect("timeout");

    let mut reader = FrameReader::new(1 << 20);
    let frame = loop {
        match reader.poll(&mut conn).expect("server answers") {
            FramePoll::Frame(f) => break f,
            FramePoll::WouldBlock => continue,
            FramePoll::Eof => panic!("connection closed without an ERROR frame"),
        }
    };
    assert_eq!(frame.frame_type, FrameType::Error);
    let error = ErrorPayload::decode(&frame.payload).expect("typed payload");
    assert_eq!(error.code, ErrorCode::FrameOversized);
    server.shutdown();
}

/// PING → PONG round-trips through a busy connection.
#[test]
fn ping_pong_round_trips() {
    let server = SortServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = SortClient::connect(server.local_addr()).expect("connect");

    let ticket = client.submit(workloads::uniform(512, 1)).expect("submit");
    client.ping().expect("ping");
    assert!(ticket.wait_timeout(REPLY_TIMEOUT).is_ok());

    // The pong arrives asynchronously; poll briefly.
    let deadline = std::time::Instant::now() + REPLY_TIMEOUT;
    while client.pongs() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no PONG within the deadline"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(client.pongs() >= 1);
    server.shutdown();
}

/// A malformed SUBMIT payload (good frame, bad contents) is a *per-job*
/// reject, not a connection error.
#[test]
fn malformed_submit_payload_is_rejected_per_job() {
    let server = SortServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect raw");
    // Job header claims RAW_LE but the record section is 3 bytes.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes()); // job id
    payload.extend_from_slice(&0u32.to_le_bytes()); // tenant
    payload.push(PayloadEncoding::RawLe as u8);
    payload.extend_from_slice(&[0u8; 3]);
    payload.extend_from_slice(&[1, 2, 3]);
    conn.write_all(&Frame::new(FrameType::Submit, payload).encode())
        .expect("write submit");
    conn.set_read_timeout(Some(REPLY_TIMEOUT)).expect("timeout");

    let mut reader = FrameReader::new(1 << 20);
    let frame = loop {
        match reader.poll(&mut conn).expect("server answers") {
            FramePoll::Frame(f) => break f,
            FramePoll::WouldBlock => continue,
            FramePoll::Eof => panic!("connection closed instead of rejecting the job"),
        }
    };
    assert_eq!(frame.frame_type, FrameType::Reject);
    let reject =
        gpu_abisort::sortsvc::net::RejectPayload::decode(&frame.payload).expect("typed reject");
    assert_eq!(reject.job_id, 7, "the reject echoes the submitted job id");
    assert_eq!(reject.code, ErrorCode::MalformedPayload);
    assert_eq!(reject.retry_after_ms, 0, "malformed payloads never retry");

    // The same connection can still submit a well-formed job.
    let good = gpu_abisort::sortsvc::net::SubmitPayload {
        job_id: 8,
        tenant: 0,
        encoding: PayloadEncoding::RawLe,
        values: workloads::uniform(16, 2),
    };
    conn.write_all(&Frame::new(FrameType::Submit, good.encode().unwrap()).encode())
        .expect("write good submit");
    let frame = loop {
        match reader.poll(&mut conn).expect("server answers") {
            FramePoll::Frame(f) => break f,
            FramePoll::WouldBlock => continue,
            FramePoll::Eof => panic!("connection died after a per-job reject"),
        }
    };
    assert_eq!(frame.frame_type, FrameType::Result);
    server.shutdown();
}
