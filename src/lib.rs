//! # gpu-abisort — reproduction of "GPU-ABiSort: Optimal Parallel Sorting on Stream Architectures"
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single package:
//!
//! * [`stream_arch`] — the stream-processor simulator (the substitute for
//!   the paper's GeForce 6800/7800 hardware);
//! * [`abisort`] — the paper's contribution: sequential adaptive bitonic
//!   sorting and the GPU-ABiSort stream program;
//! * [`baselines`] — the comparison sorters of the paper's evaluation
//!   (CPU quicksort, GPUSort bitonic network, odd-even merge sort,
//!   periodic balanced sorting network);
//! * [`workloads`] — seeded input generators;
//! * [`pram`] — the EREW/CREW PRAM simulator with the parallel sorts the
//!   paper positions itself against (Section 2.1): the original
//!   Bilardi–Nicolau adaptive bitonic sort, Batcher's network, and a
//!   rank-based parallel merge sort;
//! * [`terasort`] — the GPUTeraSort-style hybrid out-of-core pipeline
//!   (Section 2.2) built on top of GPU-ABiSort;
//! * [`sortsvc`] — the concurrent, batched sorting service: admission
//!   control with backpressure, per-tenant fairness, coalescing of small
//!   jobs into shared segmented launches, and a policy engine with a
//!   calibrated CPU/GPU/out-of-core crossover.
//!
//! ## Quick start
//!
//! ```
//! use gpu_abisort::prelude::*;
//!
//! // 10 000 value/pointer pairs with random keys.
//! let input = workloads::uniform(10_000, 42);
//!
//! // A simulated GeForce 7800 GTX and the paper's default configuration
//! // (Z-order layout, overlapped stages, both Section-7 optimizations).
//! let mut gpu = StreamProcessor::new(GpuProfile::geforce_7800());
//! let sorter = GpuAbiSorter::new(SortConfig::default());
//!
//! let run = sorter.sort_run(&mut gpu, &input).unwrap();
//! assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
//! println!("simulated time: {:.2} ms", run.sim_time.total_ms);
//! ```

pub use abisort;
pub use baselines;
pub use pram;
pub use sortsvc;
pub use stream_arch;
pub use terasort;
pub use workloads;

/// The most commonly used types, importable with a single `use`.
pub mod prelude {
    pub use abisort::TopKRun;
    pub use abisort::{
        adaptive_bitonic_sort, BitonicTree, GpuAbiSorter, LayoutChoice, MergeVariant, SortConfig,
    };
    pub use baselines::{CpuSorter, GpuSortBaseline, OddEvenMergeSort, PeriodicBalancedSort};
    pub use pram::{PramModel, PramStats};
    pub use sortsvc::{
        ClientConfig, EncodedBatch, Engine, JobKind, JobResult, KeyError, OrderByResult,
        PolicyConfig, RetryPolicy, RetryingClient, ServerConfig, ServiceConfig, ServiceMetrics,
        ShardedConfig, ShardedSorter, SortClient, SortJob, SortKey, SortPolicy, SortServer,
        SortService, StrKey, StringDictionary, TypedReport, TypedResult, TypedSortClient,
        WalConfig, WideKey,
    };
    pub use stream_arch::{
        ExecMode, GpuProfile, Layout, Node, StreamProcessor, TransferModel, Value,
    };
    pub use terasort::{CoreSorter, DiskProfile, SimulatedDisk, TeraSortConfig, TeraSorter};
    pub use workloads;
    pub use workloads::{Distribution, RequestMix};
}
